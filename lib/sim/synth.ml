(* Synthetic traffic source in the snabb "Synth" app mold: a
   pull-driven generator that allocates descriptors from a packet
   Pool and transmits them onto a Link, as fast as the downstream
   stage drains — or up to a configured rate against the caller's
   clock.  Deterministic for a given seed. *)

open Rp_pkt

let default_size_mix = [ (64, 7); (594, 4); (1500, 1) ]

type popularity = Uniform | Zipf of float
type flow_packets = Unbounded | Pareto of float * float

(* Zipf(theta) sampler over ranks 0..n-1, Gray et al's rejection-free
   construction (the YCSB generator): O(n) setup for the harmonic sum,
   O(1) float ops per draw — no alias tables or per-draw allocation,
   which matters at 10^6 ranks. *)
type zipf = {
  z_n : int;
  z_theta : float;
  z_alpha : float;
  z_zetan : float;
  z_eta : float;
  z_half_pow : float;  (* 0.5 ** theta *)
}

let zipf_make n theta =
  if theta <= 0.0 || theta >= 1.0 then
    invalid_arg "Synth.create: Zipf theta must be in (0, 1)";
  let zeta m =
    let s = ref 0.0 in
    for i = 1 to m do
      s := !s +. (1.0 /. (float_of_int i ** theta))
    done;
    !s
  in
  let zetan = zeta n in
  let zeta2 = zeta (min n 2) in
  {
    z_n = n;
    z_theta = theta;
    z_alpha = 1.0 /. (1.0 -. theta);
    z_zetan = zetan;
    z_eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan));
    z_half_pow = 0.5 ** theta;
  }

let zipf_draw z rng =
  let u = Random.State.float rng 1.0 in
  let uz = u *. z.z_zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. z.z_half_pow then 1
  else
    let r =
      int_of_float
        (float_of_int z.z_n *. (((z.z_eta *. u) -. z.z_eta +. 1.0) ** z.z_alpha))
    in
    if r >= z.z_n then z.z_n - 1 else r

(* Inverse-CDF Pareto: xm / U^(1/shape).  Floored at 2 packets so
   every flow outlives its own setup packet even in the heavy tail's
   complement — a 1-packet flow never exercises the FIX fast path. *)
let pareto_draw rng (shape, scale) =
  let u = 1.0 -. Random.State.float rng 1.0 in
  max 2 (int_of_float (scale /. (u ** (1.0 /. shape))))

type t = {
  pool : Pool.t;
  rng : Random.State.t;
  sizes : int array;  (* one entry per weight unit; uniform pick = mix *)
  flows : int;
  rate_pps : float option;
  iface : int;
  zipf : zipf option;  (* [None] = uniform rank pick (the default) *)
  pareto : (float * float) option;  (* (shape, scale): per-flow budgets *)
  (* Flow churn state, used only when budgets are bounded: [ids.(r)] is
     the flow id currently occupying popularity rank [r] and
     [remaining.(r)] its packet budget; a drained flow retires and a
     fresh id takes over the rank, so the popularity structure is
     stable while the flow population turns over continuously. *)
  ids : int array;
  remaining : int array;
  mutable next_id : int;
  mutable arrivals : int;
  mutable sweep_next : int;  (* next rank to seed; >= [flows] = done *)
  ka_every : int;  (* 0 = no keepalive interleave *)
  mutable ka_tick : int;
  mutable ka_rank : int;  (* next round-robin keepalive rank *)
  mutable start_ns : int64;  (* rate epoch; first pull's [now_ns] *)
  mutable started : bool;
  mutable generated : int;
  mutable starved : int;
  mutable blocked : int;
  mutable capped : int;
}

let create ?(seed = 42) ?(size_mix = default_size_mix) ?(flows = 64)
    ?rate_pps ?(iface = 0) ?(popularity = Uniform) ?(flow_packets = Unbounded)
    ?(sweep = false) ?(keepalive_every = 0) ~pool () =
  if keepalive_every < 0 then invalid_arg "Synth.create: keepalive_every < 0";
  if flows < 1 then invalid_arg "Synth.create: flows < 1";
  (match rate_pps with
   | Some r when r <= 0.0 -> invalid_arg "Synth.create: rate_pps <= 0"
   | _ -> ());
  if size_mix = [] then invalid_arg "Synth.create: empty size mix";
  let sizes =
    List.concat_map
      (fun (len, weight) ->
        if len < 1 || weight < 1 then
          invalid_arg "Synth.create: bad size mix entry";
        List.init weight (fun _ -> len))
      size_mix
    |> Array.of_list
  in
  let rng = Random.State.make [| seed |] in
  let zipf =
    match popularity with
    | Uniform -> None
    | Zipf theta -> Some (zipf_make flows theta)
  in
  let pareto =
    match flow_packets with
    | Unbounded -> None
    | Pareto (shape, scale) ->
      if shape <= 0.0 || scale <= 0.0 then
        invalid_arg "Synth.create: Pareto shape/scale must be positive";
      Some (shape, scale)
  in
  let remaining =
    match pareto with
    | None -> [||]
    | Some p -> Array.init flows (fun _ -> pareto_draw rng p)
  in
  {
    pool;
    rng;
    sizes;
    flows;
    rate_pps;
    iface;
    zipf;
    pareto;
    ids = (match pareto with None -> [||] | Some _ -> Array.init flows Fun.id);
    remaining;
    next_id = flows;
    arrivals = 0;
    sweep_next = (if sweep then 0 else flows);
    ka_every = keepalive_every;
    ka_tick = 0;
    ka_rank = 0;
    start_ns = 0L;
    started = false;
    generated = 0;
    starved = 0;
    blocked = 0;
    capped = 0;
  }

let pool t = t.pool

(* How many packets the rate cap allows in total by [now_ns].  The
   deficit against [generated] is this pull's budget: token-bucket
   behavior, with the bucket depth clamped to one max-batch in [pull]
   — a stalled consumer resumes with at most [max] queued tokens
   instead of an arbitrarily large catch-up burst that would overflow
   the link and inflate txdrops. *)
let allowed t ~now_ns =
  match t.rate_pps with
  | None -> max_int
  | Some rate ->
    let dt_ns = Int64.to_float (Int64.sub now_ns t.start_ns) in
    int_of_float (rate *. dt_ns /. 1e9)

(* Pick the flow id for the next packet.  The sweep phase seeds each
   rank exactly once in order (reaching N concurrent flows in N
   packets, where the coupon-collector tail of pure Zipf draws would
   need orders of magnitude more); after that, ranks come from the
   configured popularity law.  With bounded budgets, a drained rank
   retires its flow and admits a fresh id — one flow departure plus
   one arrival, keeping the concurrent population stable. *)
let next_flow_id t =
  let rank =
    if t.sweep_next < t.flows then begin
      let r = t.sweep_next in
      t.sweep_next <- r + 1;
      r
    end
    else if
      t.ka_every > 0
      && begin
           t.ka_tick <- t.ka_tick + 1;
           t.ka_tick >= t.ka_every
         end
    then begin
      (* Keepalive interleave: every [ka_every]-th packet refreshes
         the next rank round-robin, so even the coldest Zipf-tail flow
         sees a packet at least once per [ka_every * flows] generated
         — an explicit bound on live-flow idle gaps that lets a soak
         run expiry without the tail aging out en masse. *)
      t.ka_tick <- 0;
      let r = t.ka_rank in
      t.ka_rank <- (if r + 1 >= t.flows then 0 else r + 1);
      r
    end
    else
      match t.zipf with
      | None -> Random.State.int t.rng t.flows
      | Some z -> zipf_draw z t.rng
  in
  match t.pareto with
  | None -> rank
  | Some p ->
    let id = t.ids.(rank) in
    let left = t.remaining.(rank) - 1 in
    if left > 0 then t.remaining.(rank) <- left
    else begin
      t.ids.(rank) <- t.next_id;
      t.next_id <- t.next_id + 1;
      t.arrivals <- t.arrivals + 1;
      t.remaining.(rank) <- pareto_draw t.rng p
    end;
    id

let pull t ~now_ns link ~max =
  if not t.started then begin
    t.started <- true;
    t.start_ns <- now_ns
  end;
  let budget =
    match t.rate_pps with
    | None -> max  (* unlimited source: the batch size is the budget *)
    | Some _ ->
      let total = allowed t ~now_ns in
      let b = total - t.generated in
      if b <= max then b
      else begin
        (* Deficit deeper than one batch: forfeit the excess tokens
           (count the clamp) so the next pull starts from a full —
           not overflowing — bucket. *)
        t.capped <- t.capped + 1;
        t.generated <- total - max;
        max
      end
  in
  let sent = ref 0 in
  (try
     while !sent < budget do
       if Link.is_full link then begin
         t.blocked <- t.blocked + 1;
         raise Exit
       end;
       let id = next_flow_id t in
       let len = t.sizes.(Random.State.int t.rng (Array.length t.sizes)) in
       let key = Traffic.flow_key ~iface:t.iface ~id () in
       let m =
         match Pool.alloc t.pool ~key ~len with
         | m -> m
         | exception Pool.Empty ->
           t.starved <- t.starved + 1;
           raise Exit
       in
       m.Mbuf.seq <- t.generated;
       ignore (Link.transmit link m);
       t.generated <- t.generated + 1;
       incr sent
     done
   with Exit -> ());
  !sent

let generated t = t.generated
let starved t = t.starved
let blocked t = t.blocked
let capped t = t.capped
let arrivals t = t.arrivals
let sweeping t = t.sweep_next < t.flows
