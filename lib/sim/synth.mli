(** Synthetic traffic generator (snabb's [Synth] app is the model): a
    pull-driven source that allocates packet descriptors from a
    {!Rp_pkt.Pool} and transmits them onto a {!Rp_pkt.Link}.

    Unlike {!Traffic}, which schedules per-packet injection events on
    the discrete-event simulator, [Synth] is driven by the pump loop:
    each {!pull} fills the downstream link up to its budget, so the
    generator naturally backs off when the pool runs dry (packets in
    flight) or the link is full (downstream slower than the source).
    Deterministic for a given [seed]. *)

open Rp_pkt

type t

(** The default IMIX-ish size mix: 64 B × 7, 594 B × 4, 1500 B × 1. *)
val default_size_mix : (int * int) list

(** [create ~pool ()] — packets are drawn from [pool].
    [size_mix] is a [(bytes, weight)] list (default
    {!default_size_mix}); [flows] distinct flow keys are generated
    round-robin by a seeded RNG (default 64, keys via
    {!Traffic.flow_key}); [rate_pps] caps the average generation rate
    against the [now_ns] values passed to {!pull} (default: unlimited
    — generate as fast as the consumer drains). *)
val create :
  ?seed:int ->
  ?size_mix:(int * int) list ->
  ?flows:int ->
  ?rate_pps:float ->
  ?iface:int ->
  pool:Pool.t ->
  unit ->
  t

val pool : t -> Pool.t

(** [pull t ~now_ns link ~max] generates up to [max] packets onto
    [link], returning how many were sent.  Stops early when the link
    fills (counted in {!blocked}), the pool is exhausted (counted in
    {!starved}), or the rate cap for [now_ns] is reached.  The rate
    cap's token bucket holds at most one max-batch: a consumer that
    stalls and resumes gets a budget of [max], not an unbounded
    catch-up burst (forfeits counted in {!capped}). *)
val pull : t -> now_ns:int64 -> Link.t -> max:int -> int

val generated : t -> int

(** Pulls cut short by an exhausted pool. *)
val starved : t -> int

(** Pulls cut short by a full link. *)
val blocked : t -> int

(** Rate-capped pulls whose token deficit exceeded one max-batch and
    was clamped (excess tokens forfeited). *)
val capped : t -> int
