(** Synthetic traffic generator (snabb's [Synth] app is the model): a
    pull-driven source that allocates packet descriptors from a
    {!Rp_pkt.Pool} and transmits them onto a {!Rp_pkt.Link}.

    Unlike {!Traffic}, which schedules per-packet injection events on
    the discrete-event simulator, [Synth] is driven by the pump loop:
    each {!pull} fills the downstream link up to its budget, so the
    generator naturally backs off when the pool runs dry (packets in
    flight) or the link is full (downstream slower than the source).
    Deterministic for a given [seed]. *)

open Rp_pkt

type t

(** The default IMIX-ish size mix: 64 B × 7, 594 B × 4, 1500 B × 1. *)
val default_size_mix : (int * int) list

(** Flow-popularity law for the per-packet rank pick: [Uniform] (the
    default — every concurrent flow equally likely) or [Zipf theta],
    the Gray et al skewed generator with exponent [theta] in (0, 1)
    (e.g. 0.99 ≈ the classic YCSB skew): rank r is drawn with
    probability ∝ 1/(r+1)^theta, so a few elephant flows take most
    packets while a long mouse tail keeps the table full. *)
type popularity = Uniform | Zipf of float

(** Per-flow packet budgets: [Unbounded] (the default — the [flows]
    keys live forever) or [Pareto (shape, scale)] heavy-tailed
    lifetimes (inverse-CDF draw, floored at 2 packets).  With bounded
    budgets the generator churns: a flow that exhausts its budget
    retires and a {e fresh} flow id takes over its popularity rank, so
    the concurrent population stays at [flows] while flows continually
    arrive and depart (see {!arrivals}). *)
type flow_packets = Unbounded | Pareto of float * float

(** [create ~pool ()] — packets are drawn from [pool].
    [size_mix] is a [(bytes, weight)] list (default
    {!default_size_mix}); [flows] distinct flow keys are generated
    round-robin by a seeded RNG (default 64, keys via
    {!Traffic.flow_key}); [rate_pps] caps the average generation rate
    against the [now_ns] values passed to {!pull} (default: unlimited
    — generate as fast as the consumer drains).  [popularity] and
    [flow_packets] select the million-user workload shape (defaults
    reproduce the original uniform/immortal behavior draw-for-draw);
    [sweep] (default false) makes the first [flows] packets seed each
    rank exactly once in order, reaching full flow concurrency in
    [flows] packets instead of the coupon-collector tail;
    [keepalive_every] (default 0 = off) makes every k-th post-sweep
    packet refresh the next rank round-robin, bounding any live flow's
    idle gap at [k * flows] packets so long soaks can run expiry
    without the cold Zipf tail aging out wholesale. *)
val create :
  ?seed:int ->
  ?size_mix:(int * int) list ->
  ?flows:int ->
  ?rate_pps:float ->
  ?iface:int ->
  ?popularity:popularity ->
  ?flow_packets:flow_packets ->
  ?sweep:bool ->
  ?keepalive_every:int ->
  pool:Pool.t ->
  unit ->
  t

val pool : t -> Pool.t

(** [pull t ~now_ns link ~max] generates up to [max] packets onto
    [link], returning how many were sent.  Stops early when the link
    fills (counted in {!blocked}), the pool is exhausted (counted in
    {!starved}), or the rate cap for [now_ns] is reached.  The rate
    cap's token bucket holds at most one max-batch: a consumer that
    stalls and resumes gets a budget of [max], not an unbounded
    catch-up burst (forfeits counted in {!capped}). *)
val pull : t -> now_ns:int64 -> Link.t -> max:int -> int

val generated : t -> int

(** Pulls cut short by an exhausted pool. *)
val starved : t -> int

(** Pulls cut short by a full link. *)
val blocked : t -> int

(** Rate-capped pulls whose token deficit exceeded one max-batch and
    was clamped (excess tokens forfeited). *)
val capped : t -> int

(** Fresh flows admitted after a budgeted flow retired (0 unless
    [flow_packets] is [Pareto]); total distinct flow ids emitted is
    [flows + arrivals]. *)
val arrivals : t -> int

(** Whether the initial one-packet-per-rank sweep is still running. *)
val sweeping : t -> bool
