(* Tests for the AIU: filter semantics, the set-pruning DAG (checked
   against the linear reference classifier — the core correctness
   property of the repository), the flow table, and the AIU façade. *)

open Rp_pkt
open Rp_classifier

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- generators ----------------------------------------------------- *)

(* A small universe so that overlaps, subsumption and ambiguity are
   common: addresses 10.0.x.y with x,y in 0..3, prefix lengths from a
   few interesting values. *)
let gen_small_addr =
  QCheck2.Gen.map
    (fun (x, y) -> Ipaddr.v4 10 0 x y)
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 3) (QCheck2.Gen.int_bound 3))

let gen_small_prefix =
  QCheck2.Gen.map
    (fun (a, len) -> Prefix.make a len)
    (QCheck2.Gen.pair gen_small_addr
       (QCheck2.Gen.oneofl [ 0; 8; 16; 24; 30; 31; 32 ]))

let gen_port_match =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.return Filter.Any_port;
      QCheck2.Gen.map (fun p -> Filter.Port p) (QCheck2.Gen.int_bound 9);
      QCheck2.Gen.map
        (fun (a, b) -> Filter.Port_range (min a b, max a b))
        (QCheck2.Gen.pair (QCheck2.Gen.int_bound 9) (QCheck2.Gen.int_bound 9));
    ]

let gen_proto =
  QCheck2.Gen.oneofl [ None; Some Proto.tcp; Some Proto.udp ]

let gen_iface = QCheck2.Gen.oneofl [ None; Some 0; Some 1 ]

let gen_filter =
  QCheck2.Gen.map
    (fun ((src, dst, proto), (sport, dport, iface)) ->
      Filter.v4 ~src ~dst ?proto ~sport ~dport ?iface ())
    (QCheck2.Gen.pair
       (QCheck2.Gen.triple gen_small_prefix gen_small_prefix gen_proto)
       (QCheck2.Gen.triple gen_port_match gen_port_match gen_iface))

let gen_key =
  QCheck2.Gen.map
    (fun ((src, dst, proto), (sport, dport, iface)) ->
      Flow_key.make ~src ~dst
        ~proto:(match proto with None -> Proto.icmp | Some p -> p)
        ~sport ~dport
        ~iface:(match iface with None -> 2 | Some i -> i))
    (QCheck2.Gen.pair
       (QCheck2.Gen.triple gen_small_addr gen_small_addr gen_proto)
       (QCheck2.Gen.triple (QCheck2.Gen.int_bound 9) (QCheck2.Gen.int_bound 9) gen_iface))

(* --- Filter --------------------------------------------------------- *)

let key ?(src = "10.0.0.1") ?(dst = "10.0.0.2") ?(proto = Proto.udp)
    ?(sport = 1000) ?(dport = 2000) ?(iface = 0) () =
  Flow_key.make ~src:(Ipaddr.of_string src) ~dst:(Ipaddr.of_string dst) ~proto
    ~sport ~dport ~iface

let test_filter_matches () =
  (* Filter 1 of Table 1: all TCP traffic from 129.0.0.0/8 to host
     192.94.233.10. *)
  let f =
    Filter.v4 ~src:(Prefix.of_string "129.0.0.0/8")
      ~dst:(Prefix.of_string "192.94.233.10") ~proto:Proto.tcp ()
  in
  check bool_t "matches" true
    (Filter.matches f (key ~src:"129.5.5.5" ~dst:"192.94.233.10" ~proto:Proto.tcp ()));
  check bool_t "wrong source net" false
    (Filter.matches f (key ~src:"130.5.5.5" ~dst:"192.94.233.10" ~proto:Proto.tcp ()));
  check bool_t "wrong proto" false
    (Filter.matches f (key ~src:"129.5.5.5" ~dst:"192.94.233.10" ~proto:Proto.udp ()));
  check bool_t "v6 key never matches v4 filter" false
    (Filter.matches f
       (Flow_key.make ~src:(Ipaddr.of_string "::1") ~dst:(Ipaddr.of_string "::2")
          ~proto:Proto.tcp ~sport:0 ~dport:0 ~iface:0))

let test_filter_specificity () =
  (* Filter 2 (exact hosts) is more specific than filter 4 (/24 with
     wildcard destination) — the paper's own example. *)
  let f2 =
    Filter.v4 ~src:(Prefix.of_string "128.252.153.1")
      ~dst:(Prefix.of_string "128.252.153.7") ~proto:Proto.udp ()
  in
  let f4 =
    Filter.v4 ~src:(Prefix.of_string "128.252.153.0/24") ~proto:Proto.udp ()
  in
  check bool_t "f2 more specific" true (Filter.compare_specificity f2 f4 > 0);
  check bool_t "antisymmetric" true (Filter.compare_specificity f4 f2 < 0);
  check int_t "reflexive" 0 (Filter.compare_specificity f2 f2);
  (* Ports: exact beats range beats wildcard. *)
  let fp p = Filter.v4 ~dport:p () in
  check bool_t "port beats range" true
    (Filter.compare_specificity (fp (Filter.Port 80)) (fp (Filter.Port_range (0, 100))) > 0);
  check bool_t "range beats any" true
    (Filter.compare_specificity (fp (Filter.Port_range (0, 100))) (fp Filter.Any_port) > 0);
  (* Priority breaks full ties. *)
  let g1 = Filter.v4 ~proto:Proto.tcp ~priority:1 ()
  and g0 = Filter.v4 ~proto:Proto.tcp ~priority:0 () in
  check bool_t "priority wins" true (Filter.compare_specificity g1 g0 > 0)

let test_filter_parse () =
  (match Filter.of_string "<129.*.*.*, 192.94.233.10, TCP, *, *, *>" with
   | Error e -> Alcotest.failf "parse: %s" e
   | Ok f ->
     check string_t "roundtrip paper syntax"
       "<129.0.0.0/8, 192.94.233.10, TCP, *, *, *>" (Filter.to_string f));
  (match Filter.of_string "<10.0.0.0/8, *, UDP, 1024-2048, 53, if1> prio=3" with
   | Error e -> Alcotest.failf "parse: %s" e
   | Ok f ->
     check bool_t "range parsed" true (f.Filter.sport = Filter.Port_range (1024, 2048));
     check bool_t "iface parsed" true (f.Filter.iface = Filter.Num 1);
     check int_t "priority" 3 f.Filter.priority);
  check bool_t "reject five fields" true
    (Result.is_error (Filter.of_string "<*, *, TCP, *, *>"));
  check bool_t "reject garbage" true
    (Result.is_error (Filter.of_string "nonsense"));
  check bool_t "reject bad port" true
    (Result.is_error (Filter.of_string "<*, *, TCP, 99999, *, *>"))

let prop_filter_parse_roundtrip =
  qtest "filter: of_string (to_string f) = f" gen_filter (fun f ->
      match Filter.of_string (Filter.to_string f) with
      | Ok f' -> Filter.equal f f'
      | Error _ -> false)

let prop_exact_of_key_matches =
  qtest "filter: exact_of_key matches only its key"
    (QCheck2.Gen.pair gen_key gen_key)
    (fun (k1, k2) ->
      let f = Filter.exact_of_key k1 in
      Filter.matches f k1
      && (Flow_key.equal k1 k2 || not (Filter.matches f k2)))

(* --- DAG: paper examples -------------------------------------------- *)

(* Table 1 / Figure 4 of the paper (protocol level only, ports and
   iface wildcarded). *)
let table1 () =
  let f1 =
    Filter.v4 ~src:(Prefix.of_string "129.0.0.0/8")
      ~dst:(Prefix.of_string "192.94.233.10") ~proto:Proto.tcp ()
  and f2 =
    Filter.v4 ~src:(Prefix.of_string "128.252.153.1")
      ~dst:(Prefix.of_string "128.252.153.7") ~proto:Proto.udp ()
  and f3 =
    Filter.v4 ~src:(Prefix.of_string "128.252.153.1")
      ~dst:(Prefix.of_string "128.252.153.7") ~proto:Proto.tcp ()
  and f4 = Filter.v4 ~src:(Prefix.of_string "128.252.153.0/24") ~proto:Proto.udp () in
  (f1, f2, f3, f4)

let test_dag_figure4 () =
  let f1, f2, f3, f4 = table1 () in
  let dag = Dag.create () in
  Dag.insert dag f1 1;
  Dag.insert dag f2 2;
  Dag.insert dag f3 3;
  Dag.insert dag f4 4;
  let expect name k want =
    match Dag.lookup dag k with
    | Some (_, v) -> check int_t name want v
    | None -> Alcotest.failf "%s: no match" name
  in
  (* The paper's example walk: <128.252.153.1, 128.252.153.7, UDP>
     terminates at filter 2 (more specific than filter 4). *)
  expect "paper walk -> filter 2"
    (key ~src:"128.252.153.1" ~dst:"128.252.153.7" ~proto:Proto.udp ())
    2;
  expect "tcp sibling -> filter 3"
    (key ~src:"128.252.153.1" ~dst:"128.252.153.7" ~proto:Proto.tcp ())
    3;
  (* Another host in the /24: only filter 4 applies. *)
  expect "subnet udp -> filter 4"
    (key ~src:"128.252.153.2" ~dst:"1.2.3.4" ~proto:Proto.udp ())
    4;
  expect "network 129 tcp -> filter 1"
    (key ~src:"129.1.2.3" ~dst:"192.94.233.10" ~proto:Proto.tcp ())
    1;
  (* Filters 1 and 4 are disjoint: TCP from 129/8 to another host. *)
  check bool_t "no match" true
    (Dag.lookup dag (key ~src:"129.1.2.3" ~dst:"5.6.7.8" ~proto:Proto.tcp ()) = None);
  (* The replication case: src matches both f2's host and f4's /24 —
     a UDP packet from .1 to a host other than .7 must still find f4. *)
  expect "set pruning keeps f4 reachable"
    (key ~src:"128.252.153.1" ~dst:"9.9.9.9" ~proto:Proto.udp ())
    4

let test_dag_remove_rebind () =
  let f1, f2, f3, f4 = table1 () in
  let dag = Dag.create () in
  List.iter (fun (f, v) -> Dag.insert dag f v) [ (f1, 1); (f2, 2); (f3, 3); (f4, 4) ];
  Dag.remove dag f2;
  (match Dag.lookup dag (key ~src:"128.252.153.1" ~dst:"128.252.153.7" ~proto:Proto.udp ()) with
   | Some (_, v) -> check int_t "falls back to f4" 4 v
   | None -> Alcotest.fail "expected f4");
  check int_t "length" 3 (Dag.length dag);
  (* Rebinding an existing filter replaces its value. *)
  Dag.insert dag f4 44;
  (match Dag.lookup dag (key ~src:"128.252.153.2" ~dst:"1.1.1.1" ~proto:Proto.udp ()) with
   | Some (_, v) -> check int_t "rebound" 44 v
   | None -> Alcotest.fail "expected rebound f4");
  check int_t "length unchanged" 3 (Dag.length dag)

let test_dag_port_ranges () =
  let dag = Dag.create () in
  let f_range = Filter.v4 ~dport:(Filter.Port_range (100, 200)) () in
  let f_exact = Filter.v4 ~dport:(Filter.Port 150) () in
  let f_any = Filter.v4 ~proto:Proto.udp () in
  Dag.insert dag f_range 1;
  Dag.insert dag f_exact 2;
  Dag.insert dag f_any 3;
  let got p proto =
    match Dag.lookup dag (key ~proto ~dport:p ()) with
    | Some (_, v) -> v
    | None -> -1
  in
  check int_t "exact wins inside range" 2 (got 150 Proto.tcp);
  check int_t "range" 1 (got 100 Proto.tcp);
  check int_t "range upper edge" 1 (got 200 Proto.tcp);
  check int_t "outside range udp" 3 (got 201 Proto.udp);
  check int_t "outside range tcp" (-1) (got 201 Proto.tcp);
  (* Overlapping range inserted later forces interval splitting. *)
  let f_overlap = Filter.v4 ~dport:(Filter.Port_range (150, 300)) ~priority:5 () in
  Dag.insert dag f_overlap 4;
  check int_t "overlap section" 4 (got 250 Proto.tcp);
  check int_t "pre-overlap still range" 1 (got 120 Proto.tcp);
  (* 150-200 is matched by both ranges (same width ordering decides);
     f_overlap (width 151) is wider than f_exact (width 1). *)
  check int_t "exact still wins" 2 (got 150 Proto.tcp)

let test_dag_iface_level () =
  let dag = Dag.create () in
  Dag.insert dag (Filter.v4 ~iface:0 ()) 10;
  Dag.insert dag (Filter.v4 ~iface:1 ()) 11;
  Dag.insert dag (Filter.v4 ()) 99;
  let got i =
    match Dag.lookup dag (key ~iface:i ()) with Some (_, v) -> v | None -> -1
  in
  check int_t "if0" 10 (got 0);
  check int_t "if1" 11 (got 1);
  check int_t "other iface -> wildcard" 99 (got 7)

let test_dag_v6 () =
  let dag = Dag.create () in
  let f =
    Filter.v6 ~src:(Prefix.of_string "2001:db8::/32") ~proto:Proto.udp ()
  in
  Dag.insert dag f 1;
  Dag.insert dag (Filter.v6 ()) 0;
  let k6 src =
    Flow_key.make ~src:(Ipaddr.of_string src) ~dst:(Ipaddr.of_string "2001:db8::99")
      ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0
  in
  (match Dag.lookup dag (k6 "2001:db8::1") with
   | Some (_, v) -> check int_t "v6 match" 1 v
   | None -> Alcotest.fail "no v6 match");
  (match Dag.lookup dag (k6 "fe80::1") with
   | Some (_, v) -> check int_t "v6 wildcard" 0 v
   | None -> Alcotest.fail "no v6 wildcard match");
  (* A v4 key must not match the v6 wildcard filter. *)
  check bool_t "family isolation" true (Dag.lookup dag (key ()) = None)

(* --- DAG: the central equivalence property -------------------------- *)

let dag_matches_reference engine =
  let module E = (val engine : Rp_lpm.Lpm_intf.S) in
  qtest ~count:400
    (Printf.sprintf "dag(%s) = linear reference" E.name)
    QCheck2.Gen.(
      pair (list_size (int_range 0 25) gen_filter) (list_size (int_range 1 25) gen_key))
    (fun (filters, keys) ->
      let dag = Dag.create ~engine () in
      let reference = Linear_ref.create () in
      List.iteri
        (fun i f ->
          Dag.insert dag f i;
          Linear_ref.insert reference f i)
        filters;
      List.for_all
        (fun k ->
          match Linear_ref.classify reference k, Dag.lookup dag k with
          | None, None -> true
          | Some (f, _), Some (f', _) ->
            (* Distinct but equally specific filters can tie; accept
               either winner provided the specificity class agrees and
               both match. *)
            Filter.compare_specificity f f' = 0
            && Filter.matches f' k
          | None, Some _ | Some _, None -> false)
        keys)

let dag_matches_reference_after_removal =
  qtest ~count:200 "dag = linear reference after removals"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 20) gen_filter)
        (list_size (int_range 0 8) (int_bound 19))
        (list_size (int_range 1 15) gen_key))
    (fun (filters, removals, keys) ->
      let dag = Dag.create () in
      let reference = Linear_ref.create () in
      List.iteri
        (fun i f ->
          Dag.insert dag f i;
          Linear_ref.insert reference f i)
        filters;
      let arr = Array.of_list filters in
      List.iter
        (fun i ->
          if i < Array.length arr then begin
            Dag.remove dag arr.(i);
            Linear_ref.remove reference arr.(i)
          end)
        removals;
      List.for_all
        (fun k ->
          match Linear_ref.classify reference k, Dag.lookup dag k with
          | None, None -> true
          | Some (f, _), Some (f', _) ->
            Filter.compare_specificity f f' = 0 && Filter.matches f' k
          | None, Some _ | Some _, None -> false)
        keys)

(* The churn property (control-plane survival): random {e interleaved}
   insert/remove sequences — not insert-then-remove — must leave the
   DAG equivalent to one that never saw the removed filters.  This is
   what exercises removal against structures later inserts created
   from seed lists (xwild/pwild/label_filters) and against memoized
   skip chains. *)
let dag_matches_reference_interleaved_churn =
  qtest ~count:300 "dag = linear reference under interleaved churn"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 30)
           (pair (oneofl [ `Insert; `Remove; `Optimize ]) (int_bound 11)))
        (array_size (return 12) gen_filter)
        (list_size (int_range 1 15) gen_key))
    (fun (script, pool, keys) ->
      let dag = Dag.create () in
      let reference = Linear_ref.create () in
      List.iteri
        (fun step (op, i) ->
          let f = pool.(i) in
          match op with
          | `Insert ->
            Dag.insert dag f step;
            Linear_ref.insert reference f step
          | `Remove ->
            Dag.remove dag f;
            Linear_ref.remove reference f
          | `Optimize ->
            (* Memoize skip chains mid-churn so removals must clear
               them. *)
            Dag.optimize dag)
        script;
      Dag.length dag = Linear_ref.length reference
      && List.for_all
           (fun k ->
             match Linear_ref.classify reference k, Dag.lookup dag k with
             | None, None -> true
             | Some (f, _), Some (f', _) ->
               Filter.compare_specificity f f' = 0 && Filter.matches f' k
             | None, Some _ | Some _, None -> false)
           keys)

(* --- DAG: wildcard-chain collapsing (§5.1.2 optimization) ------------- *)

let test_dag_optimize_reduces_accesses () =
  (* Filters with fully wildcarded proto/ports/iface: levels 2-5 become
     single-wildcard chains that optimize collapses. *)
  let dag = Dag.create () in
  for i = 0 to 9 do
    Dag.insert dag
      (Filter.v4 ~src:(Prefix.make (Ipaddr.v4 10 0 0 i) 32) ())
      i
  done;
  let k = key ~src:"10.0.0.3" () in
  ignore (Dag.lookup dag k);
  let r1, before = Rp_lpm.Access.measure (fun () -> Dag.lookup dag k) in
  Dag.optimize dag;
  let r2, after = Rp_lpm.Access.measure (fun () -> Dag.lookup dag k) in
  check bool_t "same result" true
    (match r1, r2 with
     | Some (_, a), Some (_, b) -> a = b
     | None, None -> true
     | _, _ -> false);
  check bool_t (Printf.sprintf "fewer accesses (%d -> %d)" before after) true
    (after < before);
  (* An insert through the collapsed path un-collapses it, keeping
     results correct. *)
  Dag.insert dag (Filter.v4 ~src:(Prefix.of_string "10.0.0.3") ~proto:Proto.udp ~priority:9 ()) 99;
  match Dag.lookup dag k with
  | Some (_, v) -> check int_t "post-insert correctness" 99 v
  | None -> Alcotest.fail "lost match after un-collapse"

let prop_dag_optimize_preserves_semantics =
  qtest ~count:200 "dag: optimize never changes lookup results"
    QCheck2.Gen.(
      pair (list_size (int_range 0 20) gen_filter) (list_size (int_range 1 20) gen_key))
    (fun (filters, keys) ->
      let dag = Dag.create () in
      List.iteri (fun i f -> Dag.insert dag f i) filters;
      let plain = List.map (fun k -> Dag.lookup dag k) keys in
      Dag.optimize dag;
      let collapsed = List.map (fun k -> Dag.lookup dag k) keys in
      List.for_all2
        (fun a b ->
          match a, b with
          | None, None -> true
          | Some (f, v), Some (f', v') -> Filter.equal f f' && v = v'
          | _, _ -> false)
        plain collapsed)


(* --- grid-of-tries (two-dimensional classifier, §5.1.2) --------------- *)

let test_grid_of_tries_basic () =
  let g = Grid_of_tries.create () in
  let p = Prefix.of_string in
  Grid_of_tries.insert g ~src:(p "10.0.0.0/8") ~dst:(p "192.168.0.0/16") 1;
  Grid_of_tries.insert g ~src:(p "10.1.0.0/16") ~dst:(p "0.0.0.0/0") 2;
  Grid_of_tries.insert g ~src:(p "0.0.0.0/0") ~dst:(p "192.168.1.0/24") 3;
  let look s d =
    match Grid_of_tries.lookup g ~src:(Ipaddr.of_string s) ~dst:(Ipaddr.of_string d) with
    | Some (_, _, v) -> v
    | None -> -1
  in
  (* src 10.1.x matches both /8 and /16; longest src wins. *)
  check int_t "longest src wins" 2 (look "10.1.2.3" "192.168.1.1");
  (* src 10.2.x matches only /8; needs dst 192.168/16. *)
  check int_t "switch to shorter src" 1 (look "10.2.0.1" "192.168.9.9");
  (* src outside 10/8: only the wildcard-src filter, dst /24. *)
  check int_t "wildcard src" 3 (look "172.16.0.1" "192.168.1.200");
  check int_t "no match" (-1) (look "172.16.0.1" "10.0.0.1");
  Grid_of_tries.remove g ~src:(p "10.1.0.0/16") ~dst:(p "0.0.0.0/0");
  check int_t "after removal falls back" 1 (look "10.1.2.3" "192.168.1.1")

(* The central property: grid-of-tries agrees with the linear
   reference on purely two-dimensional filters. *)
let prop_grid_of_tries_matches_reference =
  qtest ~count:400 "grid-of-tries = linear reference (2D filters)"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 25) (pair gen_small_prefix gen_small_prefix))
        (list_size (int_range 1 25) (pair gen_small_addr gen_small_addr)))
    (fun (pairs, queries) ->
      let g = Grid_of_tries.create () in
      let reference = Linear_ref.create () in
      List.iteri
        (fun i (src, dst) ->
          Grid_of_tries.insert g ~src ~dst i;
          Linear_ref.insert reference (Filter.v4 ~src ~dst ()) i)
        pairs;
      List.for_all
        (fun (src, dst) ->
          let key =
            Flow_key.make ~src ~dst ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0
          in
          match Linear_ref.classify reference key, Grid_of_tries.lookup g ~src ~dst with
          | None, None -> true
          | Some (f, _), Some (s, d, _) ->
            (* Equal specificity on the two dimensions. *)
            f.Filter.src.Prefix.len = s.Prefix.len
            && f.Filter.dst.Prefix.len = d.Prefix.len
            && Prefix.matches s src && Prefix.matches d dst
          | None, Some _ | Some _, None -> false)
        queries)

(* The paper's point: better memory than set pruning on the same
   filters. *)
let test_grid_of_tries_memory () =
  let rng = Random.State.make [| 5 |] in
  let pairs =
    List.init 600 (fun _ ->
        let addr () =
          Ipaddr.v4 (Random.State.int rng 32) (Random.State.int rng 4) 0 0
        in
        ( Prefix.make (addr ()) (8 + Random.State.int rng 9),
          Prefix.make (addr ()) (8 + Random.State.int rng 9) ))
  in
  let g = Grid_of_tries.create () in
  let dag = Dag.create () in
  List.iteri
    (fun i (src, dst) ->
      Grid_of_tries.insert g ~src ~dst i;
      Dag.insert dag (Filter.v4 ~src ~dst ()) i)
    pairs;
  let gn = Grid_of_tries.node_count g in
  let dn = Dag.node_count dag in
  check bool_t
    (Printf.sprintf "fewer nodes than set pruning (%d vs %d)" gn dn)
    true (gn < dn)

(* --- Flow table ------------------------------------------------------ *)

let mk_key i =
  Flow_key.make ~src:(Ipaddr.v4 10 0 (i lsr 8) (i land 0xFF))
    ~dst:(Ipaddr.v4 10 1 0 1) ~proto:Proto.udp ~sport:(1000 + i) ~dport:53
    ~iface:0

let test_flow_table_hit_miss () =
  let t = Flow_table.create ~buckets:64 ~gates:3 () in
  let k = mk_key 1 in
  check bool_t "miss first" true (Flow_table.lookup t k ~now:0L = None);
  let r = Flow_table.insert t k ~now:0L in
  Flow_table.set_binding t r ~gate:1 "sched";
  (match Flow_table.lookup t k ~now:5L with
   | None -> Alcotest.fail "expected hit"
   | Some r' ->
     check bool_t "same record" true (r == r');
     check bool_t "binding" true
       (match Flow_table.binding r' ~gate:1 with
        | Some b -> b.Flow_table.instance = "sched"
        | None -> false);
     check bool_t "empty gate" true (Flow_table.binding r' ~gate:0 = None));
  let s = Flow_table.stats t in
  check int_t "hits" 1 s.Flow_table.hits;
  check int_t "misses" 1 s.Flow_table.misses

let test_flow_table_fix () =
  let t = Flow_table.create ~buckets:64 ~gates:2 () in
  let r = Flow_table.insert t (mk_key 1) ~now:0L in
  let fix = Flow_table.fix_of_record r in
  (match Flow_table.find_fix t fix with
   | Some r' -> check bool_t "fix resolves" true (r == r')
   | None -> Alcotest.fail "fix should resolve");
  Flow_table.remove t r;
  check bool_t "fix invalid after remove" true (Flow_table.find_fix t fix = None);
  (* Reuse the slot for another flow: the old FIX must not resolve. *)
  let r2 = Flow_table.insert t (mk_key 2) ~now:1L in
  check bool_t "slot reused" true (Flow_table.slot r2 = Flow_table.slot r);
  check bool_t "stale fix rejected" true (Flow_table.find_fix t fix = None);
  check bool_t "new fix ok" true
    (Flow_table.find_fix t (Flow_table.fix_of_record r2) <> None)

let test_flow_table_growth () =
  let t = Flow_table.create ~buckets:64 ~initial_records:4 ~gates:1 () in
  check int_t "initial capacity" 4 (Flow_table.capacity t);
  for i = 0 to 9 do
    ignore (Flow_table.insert t (mk_key i) ~now:(Int64.of_int i))
  done;
  check int_t "live" 10 (Flow_table.length t);
  check bool_t "grew exponentially" true (Flow_table.capacity t >= 16);
  (* All ten flows still resolvable. *)
  for i = 0 to 9 do
    if Flow_table.lookup t (mk_key i) ~now:100L = None then
      Alcotest.failf "flow %d lost during growth" i
  done

let test_flow_table_recycling () =
  let t = Flow_table.create ~buckets:16 ~initial_records:4 ~max_records:4 ~gates:1 () in
  for i = 0 to 3 do
    ignore (Flow_table.insert t (mk_key i) ~now:(Int64.of_int i))
  done;
  (* Fifth insert must recycle the oldest (key 0). *)
  ignore (Flow_table.insert t (mk_key 4) ~now:10L);
  check int_t "capacity fixed" 4 (Flow_table.capacity t);
  check bool_t "oldest gone" true (Flow_table.lookup t (mk_key 0) ~now:11L = None);
  check bool_t "newest present" true (Flow_table.lookup t (mk_key 4) ~now:11L <> None);
  check bool_t "second oldest still present" true
    (Flow_table.lookup t (mk_key 1) ~now:11L <> None);
  check int_t "recycled count" 1 (Flow_table.stats t).Flow_table.recycled

let test_flow_table_fifo_bounded () =
  (* Regression: with the default unbounded [max_records], the
     recycling FIFO was only drained on the recycle path, so
     insert/remove churn grew it one stale entry per insert forever.
     Stale entries are now compacted away when they outnumber live
     ones. *)
  let t = Flow_table.create ~buckets:64 ~initial_records:16 ~gates:2 () in
  for i = 1 to 10_000 do
    let r = Flow_table.insert t (mk_key (i land 0xFF)) ~now:0L in
    Flow_table.remove t r
  done;
  check int_t "no live records after churn" 0 (Flow_table.length t);
  let depth = (Flow_table.stats t).Flow_table.fifo_depth in
  check bool_t (Printf.sprintf "fifo drained (depth %d)" depth) true
    (depth <= 1);
  (* Mixed churn around a stable working set: depth must stay
     O(live), not O(inserts). *)
  let live =
    Array.init 50 (fun i -> Flow_table.insert t (mk_key (10_000 + i)) ~now:0L)
  in
  for i = 1 to 5_000 do
    let r = Flow_table.insert t (mk_key (20_000 + (i land 0x3F))) ~now:0L in
    Flow_table.remove t r
  done;
  let depth = (Flow_table.stats t).Flow_table.fifo_depth in
  let alive = Flow_table.length t in
  check bool_t
    (Printf.sprintf "fifo O(live) under churn (depth %d, live %d)" depth alive)
    true
    (depth <= (2 * alive) + 2);
  (* Recycling still works after compaction rounds. *)
  Array.iter (fun r -> Flow_table.remove t r) live;
  check int_t "empty again" 0 (Flow_table.length t)

let test_flow_table_eviction_callback () =
  let evicted = ref [] in
  let on_evict ~gate (b : string Flow_table.binding) =
    evicted := (gate, b.Flow_table.instance) :: !evicted
  in
  let t = Flow_table.create ~buckets:16 ~gates:2 ~on_evict () in
  let r = Flow_table.insert t (mk_key 1) ~now:0L in
  Flow_table.set_binding t r ~gate:0 "a";
  Flow_table.set_binding t r ~gate:1 "b";
  Flow_table.remove t r;
  check int_t "two callbacks" 2 (List.length !evicted);
  check bool_t "gates seen" true
    (List.mem (0, "a") !evicted && List.mem (1, "b") !evicted)

let test_flow_table_expire () =
  let t = Flow_table.create ~buckets:16 ~gates:1 () in
  ignore (Flow_table.insert t (mk_key 1) ~now:0L);
  ignore (Flow_table.insert t (mk_key 2) ~now:0L);
  (* Touch flow 2 late so only flow 1 is idle. *)
  ignore (Flow_table.lookup t (mk_key 2) ~now:900L);
  let n = Flow_table.expire t ~now:1000L ~idle_ns:500L in
  check int_t "one expired" 1 n;
  check bool_t "flow1 gone" true (Flow_table.lookup t (mk_key 1) ~now:1001L = None);
  check bool_t "flow2 kept" true (Flow_table.lookup t (mk_key 2) ~now:1001L <> None)

let test_flow_table_invalidate () =
  let t = Flow_table.create ~buckets:16 ~gates:1 () in
  for i = 0 to 7 do
    let r = Flow_table.insert t (mk_key i) ~now:0L in
    Flow_table.set_binding t r ~gate:0 "x"
  done;
  (* mk_key i has sport = 1000 + i: invalidate the even sports. *)
  let n =
    Flow_table.invalidate t ~matches:(fun k -> k.Flow_key.sport mod 2 = 0)
  in
  check int_t "half invalidated" 4 n;
  check int_t "half kept" 4 (Flow_table.length t);
  for i = 0 to 7 do
    let present = Flow_table.lookup t (mk_key i) ~now:1L <> None in
    check bool_t (Printf.sprintf "flow %d" i) (i mod 2 = 1) present
  done;
  (* Slots freed by invalidation are reusable. *)
  for i = 8 to 11 do
    ignore (Flow_table.insert t (mk_key i) ~now:2L)
  done;
  check int_t "refilled" 8 (Flow_table.length t)

(* Exactly-once export: drive eviction by invalidation, recycling and
   expiry against the same single slot, with stale FIFO entries in
   play, and count exporter calls per reason.  A record evicted by
   invalidation while its (slot, gen) entry still sits in the
   recycling FIFO must be neither double-exported nor leak
   [fifo_stale]. *)
let test_flow_table_export_exactly_once () =
  let exported = Hashtbl.create 8 in
  let t =
    Flow_table.create ~buckets:8 ~initial_records:1 ~max_records:1 ~gates:1 ()
  in
  Flow_table.set_exporter t (fun ~reason r ->
      let k = (reason, Flow_table.key r, Flow_table.gen r) in
      Hashtbl.replace exported k (1 + Option.value ~default:0 (Hashtbl.find_opt exported k)));
  let count reason =
    Hashtbl.fold
      (fun (re, _, _) n acc -> if re = reason then acc + n else acc)
      exported 0
  in
  (* 1. Invalidate while the record's FIFO entry is live. *)
  ignore (Flow_table.insert t (mk_key 0) ~now:0L);
  check int_t "one invalidated" 1 (Flow_table.invalidate t ~matches:(fun _ -> true));
  check int_t "invalidated exported once" 1 (count "invalidated");
  (* 2. The stranded FIFO entry must not break recycling: fill the one
     slot again, then force a recycle. *)
  ignore (Flow_table.insert t (mk_key 1) ~now:1L);
  ignore (Flow_table.insert t (mk_key 2) ~now:2L) (* recycles key 1 *);
  check int_t "recycled exported once" 1 (count "recycled");
  check bool_t "recycled was key 1" true
    (Hashtbl.mem exported ("recycled", mk_key 1, 2));
  (* 3. Expire the survivor. *)
  check int_t "one expired" 1 (Flow_table.expire t ~now:1000L ~idle_ns:10L);
  check int_t "expired exported once" 1 (count "expired");
  check int_t "table empty" 0 (Flow_table.length t);
  (* Every export fired exactly once — no (reason, key, gen) repeats. *)
  Hashtbl.iter
    (fun (reason, _, gen) n ->
      check int_t (Printf.sprintf "%s gen=%d exported once" reason gen) 1 n)
    exported;
  (* No stale-entry leak: the FIFO is empty or all-stale-compacted. *)
  check bool_t "fifo drained" true ((Flow_table.stats t).Flow_table.fifo_depth <= 1);
  (* And the slot still works. *)
  ignore (Flow_table.insert t (mk_key 3) ~now:2000L);
  check int_t "slot reusable after all three paths" 1 (Flow_table.length t)

let prop_flow_table_model =
  (* Model check: a sequence of insert/remove/lookup agrees with a
     simple association-list model (unbounded table). *)
  qtest ~count:200 "flow table = model"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_bound 2) (int_bound 15)))
    (fun ops ->
      let t = Flow_table.create ~buckets:8 ~initial_records:2 ~gates:1 () in
      let model = Hashtbl.create 16 in
      let now = ref 0L in
      List.for_all
        (fun (op, i) ->
          now := Int64.add !now 1L;
          let k = mk_key i in
          match op with
          | 0 ->
            let r = Flow_table.insert t k ~now:!now in
            Hashtbl.replace model i (Flow_table.gen r);
            true
          | 1 ->
            (match Flow_table.lookup t k ~now:!now with
             | Some r ->
               Flow_table.remove t r;
               Hashtbl.remove model i;
               true
             | None -> not (Hashtbl.mem model i))
          | _ ->
            (match Flow_table.lookup t k ~now:!now, Hashtbl.mem model i with
             | Some _, true | None, false -> true
             | Some _, false | None, true -> false))
        ops)

(* The whole point of the flat layout: once warm, the per-packet flow
   paths — lookup hit/miss, insert over a recycled slot, an expiry
   sweep that finds nothing — allocate no OCaml-heap words at all
   (same contract the packet pool proved in its GC-silence test).
   Keys are preallocated so only table work is measured; small
   constant slack covers the [Gc.minor_words] boxing itself. *)
let test_flow_table_gc_silent () =
  let t =
    Flow_table.create ~buckets:2048 ~initial_records:256 ~max_records:256
      ~gates:2 ()
  in
  let keys = Array.init 512 mk_key in
  let spin () =
    for i = 0 to 255 do
      ignore (Flow_table.insert t keys.(i) ~now:0L)
    done;
    for i = 0 to 511 do
      ignore (Flow_table.lookup t keys.(i) ~now:1L)
    done;
    (* table is full: each of these recycles the oldest record *)
    for i = 256 to 511 do
      ignore (Flow_table.insert t keys.(i) ~now:2L)
    done;
    ignore (Flow_table.expire t ~now:3L ~idle_ns:1_000_000_000L)
  in
  spin ();
  spin ();
  let before = Gc.minor_words () in
  spin ();
  let delta = Gc.minor_words () -. before in
  check bool_t
    (Printf.sprintf "steady state GC-silent (%.0f minor words)" delta)
    true (delta < 100.)

(* Regression for the O(allocated) maintenance sweeps: expire and
   invalidate walk the dense live set, so after growing to thousands
   of slots and draining back to a handful, a sweep visits exactly
   [live] slots — grown-but-dead capacity costs nothing. *)
let test_flow_table_olive_maintenance () =
  let t = Flow_table.create ~buckets:64 ~initial_records:4 ~gates:1 () in
  for i = 0 to 4095 do
    ignore (Flow_table.insert t (mk_key i) ~now:0L)
  done;
  check bool_t "grew to thousands of slots" true (Flow_table.capacity t >= 4096);
  (* Drain to three live flows (mk_key i has sport = 1000 + i). *)
  let n = Flow_table.invalidate t ~matches:(fun k -> k.Flow_key.sport >= 1003) in
  check int_t "drained" 4093 n;
  check int_t "three live" 3 (Flow_table.length t);
  let v0 = (Flow_table.stats t).Flow_table.maint_visited in
  check int_t "nothing idle" 0 (Flow_table.expire t ~now:1L ~idle_ns:1_000_000_000L);
  let v1 = (Flow_table.stats t).Flow_table.maint_visited in
  check int_t "expire visited exactly the live slots" 3 (v1 - v0);
  ignore (Flow_table.invalidate t ~matches:(fun _ -> false));
  let v2 = (Flow_table.stats t).Flow_table.maint_visited in
  check int_t "invalidate visited exactly the live slots" 3 (v2 - v1)

(* The probe run is charged like the old bucket chain — one access for
   the home-bucket read plus one per occupied slot inspected — and
   [chain_max] counts those occupied slots uniformly on hits and
   misses.  Uses a fixed-size table so home buckets are computable. *)
let test_flow_table_probe_charges () =
  Rp_lpm.Access.set_enabled true;
  let t =
    Flow_table.create ~buckets:16 ~initial_records:4 ~max_records:4 ~gates:1 ()
  in
  let mask = 15 in
  let home k = Flow_key.hash k land mask in
  let base = mk_key 0 in
  let h = home base in
  let find_key p =
    let rec go i =
      if i > 100_000 then Alcotest.fail "no key found for probe layout"
      else
        let k = mk_key i in
        if p k then k else go (i + 1)
    in
    go 1
  in
  let collider = find_key (fun k -> home k = h) in
  let elsewhere =
    find_key (fun k -> home k <> h && home k <> (h + 1) land mask)
  in
  let third = find_key (fun k -> home k = h && not (Flow_key.equal k collider)) in
  ignore (Flow_table.insert t base ~now:0L);
  let r, c = Rp_lpm.Access.measure (fun () -> Flow_table.lookup t base ~now:1L) in
  check bool_t "hit" true (r <> None);
  check int_t "collision-free hit charges 2" 2 c;
  check int_t "hit at depth 0 records chain 1" 1
    (Flow_table.stats t).Flow_table.chain_max;
  let r, c =
    Rp_lpm.Access.measure (fun () -> Flow_table.lookup t elsewhere ~now:1L)
  in
  check bool_t "miss" true (r = None);
  check int_t "miss on empty home charges 1" 1 c;
  (* Second key with the same home bucket probes to home+1. *)
  ignore (Flow_table.insert t collider ~now:2L);
  let r, c =
    Rp_lpm.Access.measure (fun () -> Flow_table.lookup t collider ~now:3L)
  in
  check bool_t "collided hit" true (r <> None);
  check int_t "hit at depth 1 charges 3" 3 c;
  check int_t "hit at depth 1 records chain 2" 2
    (Flow_table.stats t).Flow_table.chain_max;
  (* A missing key with the same home skips both occupied slots. *)
  let r, c = Rp_lpm.Access.measure (fun () -> Flow_table.lookup t third ~now:4L) in
  check bool_t "miss past the run" true (r = None);
  check int_t "miss past 2 occupied charges 3" 3 c;
  check int_t "miss records occupied slots skipped" 2
    (Flow_table.stats t).Flow_table.chain_max

let prop_flow_table_equiv =
  (* The flat table against a boxed reference model on a bounded
     4-record table, so recycling pressure is constant: lookup
     results, FIX validity, per-gate staleness, live count and the
     export log must agree hit-for-hit under random interleavings of
     insert / lookup / remove / expire / invalidate / gate bumps.
     Exports with a deterministic trigger (replaced, recycled,
     removed) are compared in order — pinning eviction order — and
     whole-table sweeps (expired, invalidated, flushed) as multisets,
     since the sweep walks the dense live array, not insertion
     order. *)
  qtest ~count:300 "flat table = boxed reference model"
    QCheck2.Gen.(list_size (int_range 1 80) (pair (int_bound 7) (int_bound 11)))
    (fun ops ->
      let max_records = 4 in
      let gates = 2 in
      let t =
        Flow_table.create ~buckets:8 ~initial_records:max_records ~max_records
          ~gates ()
      in
      let exports = ref [] in
      Flow_table.set_exporter t (fun ~reason r ->
          exports := (reason, (Flow_table.key r).Flow_key.sport - 1000) :: !exports);
      (* Reference model: live entries in insertion order (oldest
         first), each (key index, unique insert seq, last-use, per-gate
         bump stamps). *)
      let m_live = ref [] in
      let m_seq = ref 0 in
      let m_bumps = Array.make gates 0 in
      let m_exports = ref [] in
      let m_export reason (idx, _, _, _) = m_exports := (reason, idx) :: !m_exports in
      let m_find idx = List.find_opt (fun (i, _, _, _) -> i = idx) !m_live in
      let m_remove idx = m_live := List.filter (fun (i, _, _, _) -> i <> idx) !m_live in
      let m_insert idx now =
        (match m_find idx with
         | Some e ->
           m_export "replaced" e;
           m_remove idx
         | None ->
           if List.length !m_live >= max_records then begin
             let oldest = List.hd !m_live in
             m_export "recycled" oldest;
             m_live := List.tl !m_live
           end);
        incr m_seq;
        m_live := !m_live @ [ (idx, !m_seq, ref now, Array.copy m_bumps) ];
        !m_seq
      in
      let fixes = ref [] in
      let now = ref 0L in
      let ok = ref true in
      let assert_ b = if not b then ok := false in
      List.iter
        (fun (op, i) ->
          now := Int64.add !now 10L;
          let k = mk_key i in
          (match op with
           | 0 | 1 ->
             let r = Flow_table.insert t k ~now:!now in
             let seq = m_insert i (Int64.to_int !now) in
             fixes := (Flow_table.fix_of_record r, i, seq, Flow_table.gen r) :: !fixes
           | 2 | 3 -> (
             match (Flow_table.lookup t k ~now:!now, m_find i) with
             | Some r, Some (_, _, last, stamps) ->
               last := Int64.to_int !now;
               for g = 0 to gates - 1 do
                 assert_
                   (Flow_table.gate_stale t r ~gate:g = (stamps.(g) < m_bumps.(g)))
               done
             | None, None -> ()
             | _ -> assert_ false)
           | 4 -> (
             match (Flow_table.lookup t k ~now:!now, m_find i) with
             | Some r, Some e ->
               Flow_table.remove t r;
               m_export "removed" e;
               m_remove i
             | None, None -> ()
             | _ -> assert_ false)
           | 5 ->
             let n = Flow_table.expire t ~now:!now ~idle_ns:25L in
             let gone, kept =
               List.partition
                 (fun (_, _, last, _) -> Int64.to_int !now - !last > 25)
                 !m_live
             in
             List.iter (m_export "expired") gone;
             m_live := kept;
             assert_ (n = List.length gone)
           | 6 ->
             let n =
               Flow_table.invalidate t
                 ~matches:(fun k -> k.Flow_key.sport mod 2 = 0)
             in
             let gone, kept =
               List.partition (fun (idx, _, _, _) -> (1000 + idx) mod 2 = 0) !m_live
             in
             List.iter (m_export "invalidated") gone;
             m_live := kept;
             assert_ (n = List.length gone)
           | _ ->
             let g = i mod gates in
             Flow_table.bump_gate t ~gate:g;
             m_bumps.(g) <- m_bumps.(g) + 1);
          assert_ (Flow_table.length t = List.length !m_live);
          (* every FIX handed out so far resolves iff its exact
             incarnation (key index + insert seq) is still live *)
          List.iter
            (fun (fix, idx, seq, gen) ->
              let expect =
                match m_find idx with Some (_, s, _, _) -> s = seq | None -> false
              in
              let got =
                match Flow_table.find_fix t fix with
                | Some r ->
                  Flow_table.gen r = gen
                  && (Flow_table.key r).Flow_key.sport - 1000 = idx
                | None -> false
              in
              assert_ (got = expect))
            !fixes)
        ops;
      Flow_table.flush t;
      List.iter (m_export "flushed") !m_live;
      m_live := [];
      let det = [ "replaced"; "recycled"; "removed" ] in
      let split l =
        ( List.filter (fun (r, _) -> List.mem r det) l,
          List.sort compare (List.filter (fun (r, _) -> not (List.mem r det)) l) )
      in
      let d_real, s_real = split !exports in
      let d_model, s_model = split !m_exports in
      assert_ (d_real = d_model);
      assert_ (s_real = s_model);
      !ok)

(* --- AIU ------------------------------------------------------------- *)

let test_aiu_classify_caches () =
  let aiu = Aiu.create ~gates:3 () in
  let f = Filter.v4 ~src:(Prefix.of_string "10.0.0.0/8") () in
  Aiu.bind aiu ~gate:0 f "opt";
  Aiu.bind aiu ~gate:2 f "sched";
  let m = Mbuf.synth ~key:(key ()) ~len:100 () in
  (* First gate on an uncached flow: classification populates all gates. *)
  (match Aiu.classify aiu m ~gate:0 ~now:0L with
   | Some (v, record) ->
     check string_t "gate0 instance" "opt" v;
     check bool_t "gate2 prefetched" true
       (match Flow_table.binding record ~gate:2 with
        | Some b -> b.Flow_table.instance = "sched"
        | None -> false);
     check bool_t "gate1 empty" true (Flow_table.binding record ~gate:1 = None)
   | None -> Alcotest.fail "expected gate0 match");
  check bool_t "fix set" true (m.Mbuf.fix <> None);
  (* Subsequent gate uses the FIX: no flow-table lookup. *)
  let stats_before = Flow_table.stats (Aiu.flow_table aiu) in
  (match Aiu.classify aiu m ~gate:2 ~now:1L with
   | Some (v, _) -> check string_t "gate2 via fix" "sched" v
   | None -> Alcotest.fail "expected gate2 match");
  let stats_after = Flow_table.stats (Aiu.flow_table aiu) in
  check int_t "no extra hash lookup via fix" stats_before.Flow_table.lookups
    stats_after.Flow_table.lookups;
  (* Second packet of the flow: flow-table hit, no filter lookup. *)
  let m2 = Mbuf.synth ~key:(key ()) ~len:100 () in
  (match Aiu.classify aiu m2 ~gate:0 ~now:2L with
   | Some (v, _) -> check string_t "cached flow" "opt" v
   | None -> Alcotest.fail "expected cached match");
  check int_t "hit recorded" 1 (Flow_table.stats (Aiu.flow_table aiu)).Flow_table.hits

let test_aiu_rebind_flushes () =
  let aiu = Aiu.create ~gates:1 () in
  let f = Filter.v4 ~src:(Prefix.of_string "10.0.0.0/8") () in
  Aiu.bind aiu ~gate:0 f "v1";
  let m = Mbuf.synth ~key:(key ()) ~len:100 () in
  (match Aiu.classify aiu m ~gate:0 ~now:0L with
   | Some (v, _) -> check string_t "before" "v1" v
   | None -> Alcotest.fail "expected match");
  Aiu.bind aiu ~gate:0 f "v2";
  (* The cached flow entry and the packet's FIX are now stale; a new
     packet must see the new binding. *)
  let m2 = Mbuf.synth ~key:(key ()) ~len:100 () in
  (match Aiu.classify aiu m2 ~gate:0 ~now:1L with
   | Some (v, _) -> check string_t "after rebind" "v2" v
   | None -> Alcotest.fail "expected match after rebind");
  (* The old packet's FIX is stale but must degrade gracefully. *)
  match Aiu.classify aiu m ~gate:0 ~now:2L with
  | Some (v, _) -> check string_t "stale fix reclassified" "v2" v
  | None -> Alcotest.fail "expected reclassification"

let counter_get name = Rp_obs.Counter.get (Rp_obs.Registry.counter name)

(* Selective invalidation: rebinding a filter evicts only the flows it
   matches; unrelated flows keep their cache entries. *)
let test_aiu_selective_invalidation () =
  let aiu = Aiu.create ~gates:1 () in
  let f10 = Filter.v4 ~src:(Prefix.of_string "10.0.0.0/8") () in
  let f11 = Filter.v4 ~src:(Prefix.of_string "11.0.0.0/8") () in
  Aiu.bind aiu ~gate:0 f10 "ten";
  Aiu.bind aiu ~gate:0 f11 "eleven";
  let k10 = key ~src:"10.1.2.3" () and k11 = key ~src:"11.1.2.3" () in
  (match Aiu.classify_key aiu k10 ~gate:0 ~now:0L with
   | Some (v, _) -> check string_t "ten" "ten" v
   | None -> Alcotest.fail "expected ten");
  (match Aiu.classify_key aiu k11 ~gate:0 ~now:0L with
   | Some (v, _) -> check string_t "eleven" "eleven" v
   | None -> Alcotest.fail "expected eleven");
  check int_t "both flows cached" 2 (Flow_table.length (Aiu.flow_table aiu));
  (* Rebind the 10/8 filter: only the 10.x flow may be evicted. *)
  Aiu.bind aiu ~gate:0 f10 "ten-v2";
  check int_t "unrelated flow kept" 1 (Flow_table.length (Aiu.flow_table aiu));
  check bool_t "11.x record survived" true
    (Flow_table.lookup (Aiu.flow_table aiu) k11 ~now:1L <> None);
  check bool_t "10.x record evicted" true
    (Flow_table.lookup (Aiu.flow_table aiu) k10 ~now:1L = None);
  match Aiu.classify_key aiu k10 ~gate:0 ~now:2L with
  | Some (v, _) -> check string_t "reclassified to v2" "ten-v2" v
  | None -> Alcotest.fail "expected ten-v2"

(* A filter with both addresses wildcarded takes the O(1) gate-bump
   path: no flow is evicted, and cached bindings at that gate
   revalidate lazily (one DAG lookup) on next use. *)
let test_aiu_wildcard_bump_lazy_revalidation () =
  let aiu = Aiu.create ~gates:2 () in
  let fw = Filter.v4 ~proto:Proto.udp () in
  Aiu.bind aiu ~gate:0 fw "v1";
  let keys = List.init 4 (fun i -> key ~sport:(100 + i) ()) in
  List.iter
    (fun k ->
      match Aiu.classify_key aiu k ~gate:0 ~now:0L with
      | Some (v, _) -> check string_t "v1" "v1" v
      | None -> Alcotest.fail "expected v1")
    keys;
  check int_t "flows cached" 4 (Flow_table.length (Aiu.flow_table aiu));
  let reval0 = counter_get "aiu.revalidations" in
  let bumps0 = counter_get "aiu.gate_bumps" in
  Aiu.bind aiu ~gate:0 fw "v2";
  check int_t "gate bumped, nothing evicted" 4
    (Flow_table.length (Aiu.flow_table aiu));
  check int_t "one gate bump" 1 (counter_get "aiu.gate_bumps" - bumps0);
  (* Touch two of the four flows: exactly two lazy revalidations. *)
  List.iteri
    (fun i k ->
      if i < 2 then
        match Aiu.classify_key aiu k ~gate:0 ~now:1L with
        | Some (v, _) -> check string_t "v2 after bump" "v2" v
        | None -> Alcotest.fail "expected v2")
    keys;
  check int_t "revalidations proportional to touched flows" 2
    (counter_get "aiu.revalidations" - reval0)

let test_aiu_no_match () =
  let aiu = Aiu.create ~gates:2 () in
  Aiu.bind aiu ~gate:0 (Filter.v4 ~proto:Proto.tcp ()) "tcp-only";
  let m = Mbuf.synth ~key:(key ~proto:Proto.udp ()) ~len:64 () in
  check bool_t "no binding for udp" true (Aiu.classify aiu m ~gate:0 ~now:0L = None);
  (* The flow record exists nonetheless (negative caching). *)
  check int_t "record cached" 1 (Flow_table.length (Aiu.flow_table aiu))

let prop_aiu_cached_equals_uncached =
  qtest ~count:150 "aiu: cached result = uncached classification"
    QCheck2.Gen.(
      pair (list_size (int_range 1 15) gen_filter) (list_size (int_range 1 10) gen_key))
    (fun (filters, keys) ->
      let aiu = Aiu.create ~gates:1 () in
      let reference = Linear_ref.create () in
      List.iteri
        (fun i f ->
          Aiu.bind aiu ~gate:0 f i;
          Linear_ref.insert reference f i)
        filters;
      List.for_all
        (fun k ->
          (* Ask twice: the first answer comes from the filter tables,
             the second from the flow cache.  Both must agree with the
             reference modulo specificity ties. *)
          let first = Aiu.classify_key aiu k ~gate:0 ~now:0L in
          let second = Aiu.classify_key aiu k ~gate:0 ~now:1L in
          let expect = Linear_ref.classify reference k in
          match expect, first, second with
          | None, None, None -> true
          | Some (f, _), Some (v1, _), Some (v2, _) ->
            v1 = v2
            &&
            let f' = List.nth filters v1 in
            Filter.compare_specificity f f' = 0 && Filter.matches f' k
          | _, _, _ -> false)
        keys)

(* --- compiled cross-gate classifier ---------------------------------- *)

let test_compiled_basic () =
  let c = Compiled.create ~gates:2 () in
  let udp = Filter.v4 ~proto:Proto.udp () in
  let ten = Filter.v4 ~src:(Prefix.of_string "10.0.0.0/8") () in
  let udp_exact = Filter.v4 ~proto:Proto.udp ~dport:(Filter.Port 2000) () in
  Compiled.bind c ~gate:0 udp "udp0";
  Compiled.bind c ~gate:1 ten "ten1";
  Compiled.prepare c;
  let winner k g =
    match Compiled.lookup c k with
    | None -> None
    | Some w -> Option.map snd w.(g)
  in
  (* One traversal resolves both gates. *)
  check (Alcotest.option string_t) "gate 0" (Some "udp0") (winner (key ()) 0);
  check (Alcotest.option string_t) "gate 1" (Some "ten1") (winner (key ()) 1);
  check (Alcotest.option string_t) "gate 1 miss" None
    (winner (key ~src:"11.0.0.1" ()) 1);
  (* The most specific filter wins within its gate. *)
  Compiled.bind c ~gate:0 udp_exact "udp-exact";
  check (Alcotest.option string_t) "most specific wins" (Some "udp-exact")
    (winner (key ()) 0);
  Compiled.unbind c ~gate:0 udp_exact;
  check (Alcotest.option string_t) "fallback after unbind" (Some "udp0")
    (winner (key ()) 0);
  (* A v6 key never reaches v4 leaves, even all-wildcard ones. *)
  let k6 =
    Flow_key.make ~src:(Ipaddr.of_string "2001:db8::1")
      ~dst:(Ipaddr.of_string "2001:db8::2") ~proto:Proto.udp ~sport:1000
      ~dport:2000 ~iface:0
  in
  check bool_t "v6 key misses a v4-only structure" true
    (Compiled.lookup c k6 = None);
  Compiled.clear c;
  check bool_t "cleared" true (Compiled.lookup c (key ()) = None)

(* The compiled union must agree gate-by-gate with the per-gate DAGs it
   was compiled from — same winning filter, same instance — on random
   tables including removals.  The AIU maintains both representations
   on every bind/unbind, so comparing through it also checks that the
   dual bookkeeping never drifts. *)
let prop_compiled_matches_dags =
  qtest ~count:200 "compiled = per-gate DAGs (random tables, removals)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 20) (pair (int_bound 2) gen_filter))
        (list_size (int_range 0 8) (int_bound 19))
        (list_size (int_range 1 12) gen_key))
    (fun (binds, removals, keys) ->
      let aiu = Aiu.create ~gates:3 () in
      List.iteri (fun i (g, f) -> Aiu.bind aiu ~gate:g f i) binds;
      let arr = Array.of_list binds in
      List.iter
        (fun idx ->
          if idx < Array.length arr then begin
            let g, f = arr.(idx) in
            Aiu.unbind aiu ~gate:g f
          end)
        removals;
      let c = Aiu.compiled aiu in
      List.for_all
        (fun k ->
          let w = Compiled.lookup c k in
          List.for_all
            (fun g ->
              let expect = Dag.lookup (Aiu.filter_table aiu ~gate:g) k in
              let got =
                match w with None -> None | Some ws -> ws.(g)
              in
              match expect, got with
              | None, None -> true
              | Some (f1, v1), Some (f2, v2) ->
                Filter.equal f1 f2 && v1 = v2
              | _ -> false)
            [ 0; 1; 2 ])
        keys)

(* Mode equivalence through the full AIU data path: two AIUs with
   identical tables, one per-gate and one compiled, must return the
   same verdicts for every (key, gate) — before and after the same
   bind/unbind churn (flow-cache invalidation plus lazy compiled
   rebuilds on both sides). *)
let prop_compiled_mode_equals_pergate =
  qtest ~count:150 "aiu: compiled-mode verdicts = per-gate (with churn)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 15) (pair (int_bound 2) gen_filter))
        (list_size (int_range 0 10) (pair (int_bound 2) gen_filter))
        (list_size (int_range 1 10) gen_key))
    (fun (binds, churn, keys) ->
      let mk mode =
        let aiu = Aiu.create ~gates:3 () in
        Aiu.set_mode aiu mode;
        List.iteri (fun i (g, f) -> Aiu.bind aiu ~gate:g f i) binds;
        aiu
      in
      let a = mk `Per_gate and b = mk `Compiled in
      let agree now =
        List.for_all
          (fun k ->
            List.for_all
              (fun g ->
                match
                  ( Aiu.classify_key a k ~gate:g ~now,
                    Aiu.classify_key b k ~gate:g ~now )
                with
                | None, None -> true
                | Some (x, _), Some (y, _) -> x = y
                | _ -> false)
              [ 0; 1; 2 ])
          keys
      in
      let before = agree 0L in
      List.iteri
        (fun i (g, f) ->
          if i mod 2 = 0 then begin
            Aiu.bind a ~gate:g f (1000 + i);
            Aiu.bind b ~gate:g f (1000 + i)
          end
          else begin
            Aiu.unbind a ~gate:g f;
            Aiu.unbind b ~gate:g f
          end)
        churn;
      before && agree 1L)

let test_compiled_mode_strings () =
  check bool_t "pergate roundtrip" true
    (Aiu.mode_of_string (Aiu.mode_to_string `Per_gate) = Ok `Per_gate);
  check bool_t "compiled roundtrip" true
    (Aiu.mode_of_string (Aiu.mode_to_string `Compiled) = Ok `Compiled);
  check bool_t "unknown rejected" true
    (Result.is_error (Aiu.mode_of_string "quantum"))

let () =
  Alcotest.run "rp_classifier"
    [
      ( "filter",
        [
          Alcotest.test_case "matches" `Quick test_filter_matches;
          Alcotest.test_case "specificity" `Quick test_filter_specificity;
          Alcotest.test_case "parse" `Quick test_filter_parse;
          prop_filter_parse_roundtrip;
          prop_exact_of_key_matches;
        ] );
      ( "dag",
        [
          Alcotest.test_case "figure 4 walk" `Quick test_dag_figure4;
          Alcotest.test_case "remove and rebind" `Quick test_dag_remove_rebind;
          Alcotest.test_case "port ranges" `Quick test_dag_port_ranges;
          Alcotest.test_case "iface level" `Quick test_dag_iface_level;
          Alcotest.test_case "ipv6 filters" `Quick test_dag_v6;
          dag_matches_reference Rp_lpm.Engines.patricia;
          dag_matches_reference Rp_lpm.Engines.bspl;
          dag_matches_reference Rp_lpm.Engines.cpe;
          dag_matches_reference_after_removal;
          dag_matches_reference_interleaved_churn;
          Alcotest.test_case "optimize reduces accesses" `Quick
            test_dag_optimize_reduces_accesses;
          prop_dag_optimize_preserves_semantics;
        ] );
      ( "grid_of_tries",
        [
          Alcotest.test_case "basic 2D semantics" `Quick test_grid_of_tries_basic;
          prop_grid_of_tries_matches_reference;
          Alcotest.test_case "memory vs set pruning" `Quick
            test_grid_of_tries_memory;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "hit/miss" `Quick test_flow_table_hit_miss;
          Alcotest.test_case "fix generation" `Quick test_flow_table_fix;
          Alcotest.test_case "growth" `Quick test_flow_table_growth;
          Alcotest.test_case "recycling" `Quick test_flow_table_recycling;
          Alcotest.test_case "fifo bounded under churn" `Quick
            test_flow_table_fifo_bounded;
          Alcotest.test_case "eviction callback" `Quick test_flow_table_eviction_callback;
          Alcotest.test_case "expire" `Quick test_flow_table_expire;
          Alcotest.test_case "selective invalidate" `Quick
            test_flow_table_invalidate;
          Alcotest.test_case "export exactly once" `Quick
            test_flow_table_export_exactly_once;
          prop_flow_table_model;
          Alcotest.test_case "steady state GC-silent" `Quick
            test_flow_table_gc_silent;
          Alcotest.test_case "O(live) maintenance sweeps" `Quick
            test_flow_table_olive_maintenance;
          Alcotest.test_case "probe charges and chain_max" `Quick
            test_flow_table_probe_charges;
          prop_flow_table_equiv;
        ] );
      ( "aiu",
        [
          Alcotest.test_case "classify caches" `Quick test_aiu_classify_caches;
          Alcotest.test_case "rebind flushes" `Quick test_aiu_rebind_flushes;
          Alcotest.test_case "no match" `Quick test_aiu_no_match;
          Alcotest.test_case "selective invalidation" `Quick
            test_aiu_selective_invalidation;
          Alcotest.test_case "wildcard gate bump" `Quick
            test_aiu_wildcard_bump_lazy_revalidation;
          prop_aiu_cached_equals_uncached;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "basic winners" `Quick test_compiled_basic;
          Alcotest.test_case "mode strings" `Quick test_compiled_mode_strings;
          prop_compiled_matches_dags;
          prop_compiled_mode_equals_pergate;
        ] );
    ]
