(* Tests for the control plane: the pmgr command interpreter
   (including the paper's §6.1-style DRR configuration script) and the
   SSP daemon (encoding, end-to-end reservation installation along a
   path, teardown). *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let mk_router () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  r

(* --- pmgr ------------------------------------------------------------- *)

let test_pmgr_modload_create_bind () =
  let r = mk_router () in
  check string_t "modload" "loaded drr" (ok (Rp_control.Pmgr.exec r "modload drr"));
  let out = ok (Rp_control.Pmgr.exec r "create drr quantum=1024") in
  check string_t "create reports id" "instance 1" out;
  let out = ok (Rp_control.Pmgr.exec r "bind 1 <10.0.0.0/8, *, UDP, *, *, *>") in
  check bool_t "bind echoes filter" true
    (String.length out > 0 && out.[0] = 'b');
  check string_t "attach" "if1 qdisc = drr#1" (ok (Rp_control.Pmgr.exec r "attach 1 1"));
  check string_t "detach" "if1 qdisc = fifo" (ok (Rp_control.Pmgr.exec r "detach 1"))

let test_pmgr_paper_script () =
  (* The §6.1 flavour: load DRR, create an instance for interface 1,
     attach it, bind a flow set, reserve bandwidth for one flow. *)
  let r = mk_router () in
  let script =
    "# configure weighted DRR on if1\n\
     modload drr\n\
     create drr iface=1 quantum=512\n\
     attach 1 1\n\
     bind 1 <10.0.0.0/8, *, UDP, *, *, *>\n\
     reserve 1 2000000 <10.0.0.5, 192.168.1.1, UDP, 5000, 9000, if0>\n\
     show instances\n"
  in
  let outputs = ok (Rp_control.Pmgr.exec_script r script) in
  check int_t "six commands ran" 6 (List.length outputs);
  (* The reservation produced a weight and an exact filter binding. *)
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 5) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:5000 ~dport:9000 ~iface:0
  in
  check bool_t "reservation installed" true
    (Rp_sched.Drr_plugin.weight_of ~instance_id:1 ~key <> None);
  check int_t "two filters bound" 2
    (List.length (Pcu.bindings_of r.Router.pcu ~instance:1))

let test_pmgr_errors () =
  let r = mk_router () in
  let expect_err cmd =
    match Rp_control.Pmgr.exec r cmd with
    | Error _ -> ()
    | Ok out -> Alcotest.failf "expected error for %S, got %S" cmd out
  in
  expect_err "modload no-such-plugin";
  expect_err "create drr";  (* not loaded *)
  expect_err "bind 1 <10.0.0.0/8, *, UDP, *, *, *>";  (* no instance *)
  expect_err "bind 1 not-a-filter";
  expect_err "route add not-a-prefix 0";
  expect_err "show nonsense";
  expect_err "frobnicate";
  (* attach of a non-scheduler instance *)
  ignore (ok (Rp_control.Pmgr.exec r "modload stats"));
  ignore (ok (Rp_control.Pmgr.exec r "create stats"));
  expect_err "attach 1 0";
  (* reserve needs an exact filter *)
  ignore (ok (Rp_control.Pmgr.exec r "modload drr"));
  ignore (ok (Rp_control.Pmgr.exec r "create drr"));
  expect_err "reserve 2 1000 <10.0.0.0/8, *, UDP, *, *, *>"

let test_pmgr_script_error_line () =
  let r = mk_router () in
  match Rp_control.Pmgr.exec_script r "modload drr\nbogus command\n" with
  | Error e ->
    check bool_t "line number reported" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "expected script error"

let test_pmgr_show_routes_flows () =
  let r = mk_router () in
  let routes = ok (Rp_control.Pmgr.exec r "show routes") in
  check bool_t "route listed" true
    (String.length routes > 0);
  let flows = ok (Rp_control.Pmgr.exec r "show flows") in
  check bool_t "flow stats format" true
    (String.length flows >= 5 && String.sub flows 0 5 = "live=")

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_pmgr_fault_commands () =
  let r = mk_router () in
  check string_t "policy" "fault policy = continue"
    (ok (Rp_control.Pmgr.exec r "fault policy continue"));
  check string_t "budget" "fault budget = 5000 cycles"
    (ok (Rp_control.Pmgr.exec r "fault budget 5000"));
  check string_t "budget off" "fault budget = unlimited"
    (ok (Rp_control.Pmgr.exec r "fault budget off"));
  check string_t "threshold" "fault threshold = 2 consecutive"
    (ok (Rp_control.Pmgr.exec r "fault threshold 2"));
  (* Manual quarantine round trip on a real instance. *)
  ignore (ok (Rp_control.Pmgr.exec r "modload fault-firewall"));
  ignore (ok (Rp_control.Pmgr.exec r "create fault-firewall mode=raise"));
  ignore (ok (Rp_control.Pmgr.exec r "bind 1 <*, *, UDP, *, *, *>"));
  check string_t "quarantine" "instance 1 quarantined"
    (ok (Rp_control.Pmgr.exec r "plugin quarantine 1"));
  check bool_t "faults show flags it" true
    (contains ~needle:"QUARANTINED" (ok (Rp_control.Pmgr.exec r "faults show")));
  (match Rp_control.Pmgr.exec r "plugin quarantine 1" with
   | Error _ -> ()
   | Ok out -> Alcotest.failf "double quarantine accepted: %S" out);
  check string_t "restore" "instance 1 restored"
    (ok (Rp_control.Pmgr.exec r "plugin restore 1"));
  check bool_t "flag cleared" false
    (contains ~needle:"QUARANTINED" (ok (Rp_control.Pmgr.exec r "faults show")));
  match Rp_control.Pmgr.exec r "fault policy bogus" with
  | Error _ -> ()
  | Ok out -> Alcotest.failf "bad policy accepted: %S" out

(* --- SSP ---------------------------------------------------------------- *)

let flow_of_id id =
  Flow_key.make ~src:(Ipaddr.v4 10 0 0 id) ~dst:(Ipaddr.v4 192 168 1 1)
    ~proto:Proto.udp ~sport:(4000 + id) ~dport:9000 ~iface:0

let prop_ssp_codec_roundtrip =
  qtest "ssp: decode (encode m) = m"
    QCheck2.Gen.(
      triple bool (int_range 1 200) (int_range 0 10_000_000))
    (fun (setup, id, rate) ->
      let flow = flow_of_id id in
      let msg =
        if setup then Rp_control.Ssp.Setup { flow; rate_bps = rate }
        else Rp_control.Ssp.Teardown { flow }
      in
      match Rp_control.Ssp.decode (Rp_control.Ssp.encode msg) with
      | Ok msg' -> msg = msg'
      | Error _ -> false)

let test_ssp_codec_v6 () =
  let flow =
    Flow_key.make ~src:(Ipaddr.of_string "2001:db8::1")
      ~dst:(Ipaddr.of_string "2001:db8::2") ~proto:Proto.udp ~sport:1 ~dport:2
      ~iface:0
  in
  let msg = Rp_control.Ssp.Setup { flow; rate_bps = 42 } in
  check bool_t "v6 roundtrip" true
    (Rp_control.Ssp.decode (Rp_control.Ssp.encode msg) = Ok msg);
  check bool_t "truncated rejected" true
    (Result.is_error (Rp_control.Ssp.decode (Bytes.create 3)))

(* End to end: SETUP crosses a router with DRR on the egress and
   installs the reservation there, then continues downstream. *)
let test_ssp_installs_reservation () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  let r = s.Rp_sim.Scenario.router in
  ignore (ok (Rp_control.Pmgr.exec r "modload drr"));
  ignore (ok (Rp_control.Pmgr.exec r "create drr"));
  ignore (ok (Rp_control.Pmgr.exec r (Printf.sprintf "attach 1 %d" s.Rp_sim.Scenario.out_iface)));
  let daemon = Rp_control.Ssp.attach r in
  let flow = flow_of_id 1 in
  let setup =
    Rp_control.Ssp.setup_packet ~src:(Ipaddr.v4 10 0 0 1) ~flow
      ~rate_bps:3_000_000
  in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node setup ~at:0L;
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  (match Rp_control.Ssp.reservations daemon with
   | [ (f, rate, inst) ] ->
     check bool_t "flow recorded" true
       (Flow_key.equal f { flow with Flow_key.iface = 0 });
     check int_t "rate" 3_000_000 rate;
     check int_t "instance" 1 inst
   | l -> Alcotest.failf "expected one reservation, got %d" (List.length l));
  check int_t "no failures" 0 (Rp_control.Ssp.failures daemon);
  (* The message continued downstream to the sink. *)
  check int_t "setup forwarded" 1 (Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink);
  (* Teardown removes it. *)
  let td = Rp_control.Ssp.teardown_packet ~src:(Ipaddr.v4 10 0 0 1) ~flow in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node td ~at:(Int64.add (Rp_sim.Sim.now s.Rp_sim.Scenario.sim) 10L);
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  check int_t "torn down" 0 (List.length (Rp_control.Ssp.reservations daemon))

let test_ssp_no_drr_counts_failure () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  let daemon = Rp_control.Ssp.attach s.Rp_sim.Scenario.router in
  let setup =
    Rp_control.Ssp.setup_packet ~src:(Ipaddr.v4 10 0 0 1) ~flow:(flow_of_id 1)
      ~rate_bps:1000
  in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node setup ~at:0L;
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  check int_t "failure counted" 1 (Rp_control.Ssp.failures daemon);
  check int_t "no reservation" 0 (List.length (Rp_control.Ssp.reservations daemon))

(* --- RSVP ----------------------------------------------------------------- *)

let prop_rsvp_codec_roundtrip =
  qtest "rsvp: decode (encode m) = m"
    QCheck2.Gen.(triple bool (int_range 1 200) (int_range 0 10_000_000))
    (fun (is_path, id, rate) ->
      let flow = flow_of_id id in
      let msg =
        if is_path then
          Rp_control.Rsvp.Path { flow; phop = Ipaddr.v4 172 31 0 (1 + (id mod 200)) }
        else Rp_control.Rsvp.Resv { flow; rate_bps = rate }
      in
      Rp_control.Rsvp.decode (Rp_control.Rsvp.encode msg) = Ok msg)

(* Two RSVP routers in a chain: PATH downstream records per-hop state,
   the receiver's RESV travels back along the previous hops and
   installs reservations at every hop. *)
let rsvp_chain () =
  let sim = Rp_sim.Sim.create () in
  let mk name addr =
    let r =
      Router.create ~name
        ~ifaces:[ Iface.create ~id:0 (); Iface.create ~id:1 (); Iface.create ~id:2 () ]
        ()
    in
    Router.add_local_addr r addr;
    Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
    r
  in
  let r1_addr = Ipaddr.v4 172 31 0 1 and r2_addr = Ipaddr.v4 172 31 0 2 in
  let r1 = mk "rsvp-1" r1_addr and r2 = mk "rsvp-2" r2_addr in
  (* Upstream back-channel for RESV relay. *)
  Router.add_route r2 (Prefix.host r1_addr) ~iface:2 ();
  let n1 = Rp_sim.Net.add_router sim r1 in
  let n2 = Rp_sim.Net.add_router sim r2 in
  let sink = Rp_sim.Sink.create () in
  Rp_sim.Net.connect n1 ~iface:1 (Rp_sim.Net.To_node (n2, 0)) ~prop_ns:1000L;
  Rp_sim.Net.connect n2 ~iface:1 (Rp_sim.Net.To_sink sink) ~prop_ns:1000L;
  Rp_sim.Net.connect n2 ~iface:2 (Rp_sim.Net.To_node (n1, 0)) ~prop_ns:1000L;
  (* DRR on both downstream interfaces. *)
  List.iter
    (fun r ->
      ignore (ok (Rp_control.Pmgr.exec r "modload drr"));
      ignore (ok (Rp_control.Pmgr.exec r "create drr"));
      ignore (ok (Rp_control.Pmgr.exec r "attach 1 1")))
    [ r1; r2 ];
  let d1 = Rp_control.Rsvp.attach r1 in
  let d2 = Rp_control.Rsvp.attach r2 in
  (sim, n1, n2, d1, d2, r1_addr, r2_addr)

let test_rsvp_end_to_end () =
  let sim, n1, n2, d1, d2, r1_addr, r2_addr = rsvp_chain () in
  let sender = Ipaddr.v4 10 0 0 1 in
  let flow =
    Flow_key.make ~src:sender ~dst:(Ipaddr.v4 192 168 1 1) ~proto:Proto.udp
      ~sport:4000 ~dport:9000 ~iface:0
  in
  (* PATH from the sender crosses both routers. *)
  Rp_sim.Net.inject n1 (Rp_control.Rsvp.path_packet ~sender ~flow) ~at:0L;
  ignore (Rp_sim.Sim.run sim);
  (match Rp_control.Rsvp.path_state d1 with
   | [ (_, phop, out) ] ->
     check bool_t "r1 phop = sender" true (Ipaddr.equal phop sender);
     check int_t "r1 downstream iface" 1 out
   | l -> Alcotest.failf "r1 path entries: %d" (List.length l));
  (match Rp_control.Rsvp.path_state d2 with
   | [ (_, phop, _) ] ->
     check bool_t "r2 phop = r1" true (Ipaddr.equal phop r1_addr)
   | l -> Alcotest.failf "r2 path entries: %d" (List.length l));
  (* The receiver (beyond r2) sends RESV to its last hop, r2. *)
  let resv =
    Rp_control.Rsvp.resv_packet ~receiver:(Ipaddr.v4 192 168 1 1)
      ~to_hop:r2_addr ~flow ~rate_bps:2_000_000
  in
  resv.Mbuf.key <- { resv.Mbuf.key with Flow_key.iface = 1 };
  Rp_sim.Net.inject n2 resv ~at:(Int64.add (Rp_sim.Sim.now sim) 10L);
  ignore (Rp_sim.Sim.run sim);
  check int_t "r2 reservation" 1 (List.length (Rp_control.Rsvp.reservations d2));
  check int_t "r1 reservation" 1 (List.length (Rp_control.Rsvp.reservations d1));
  check int_t "no failures" 0
    (Rp_control.Rsvp.failures d1 + Rp_control.Rsvp.failures d2);
  (* Both hops gave the flow its weight. *)
  let key0 = { flow with Flow_key.iface = 0 } in
  check bool_t "r1 weight" true
    (Rp_sched.Drr_plugin.weight_of ~instance_id:1 ~key:key0 <> Some 0);
  (* Soft state: without refresh, tick tears everything down. *)
  let later = Int64.add (Rp_sim.Sim.now sim) 60_000_000_000L in
  let p1, v1 = Rp_control.Rsvp.tick d1 ~now:later ~lifetime_ns:30_000_000_000L in
  let p2, v2 = Rp_control.Rsvp.tick d2 ~now:later ~lifetime_ns:30_000_000_000L in
  check int_t "expired everywhere" 4 (p1 + v1 + p2 + v2);
  check int_t "r1 resv gone" 0 (List.length (Rp_control.Rsvp.reservations d1));
  check int_t "r2 paths gone" 0 (List.length (Rp_control.Rsvp.path_state d2))

let test_rsvp_resv_without_path_fails () =
  let sim, _n1, n2, _d1, d2, _r1_addr, r2_addr = rsvp_chain () in
  let flow = flow_of_id 9 in
  let resv =
    Rp_control.Rsvp.resv_packet ~receiver:(Ipaddr.v4 192 168 1 9)
      ~to_hop:r2_addr ~flow ~rate_bps:1000
  in
  resv.Mbuf.key <- { resv.Mbuf.key with Flow_key.iface = 1 };
  Rp_sim.Net.inject n2 resv ~at:0L;
  ignore (Rp_sim.Sim.run sim);
  check int_t "rejected" 1 (Rp_control.Rsvp.failures d2);
  check int_t "no reservation" 0 (List.length (Rp_control.Rsvp.reservations d2))

let test_rsvp_refresh_keeps_state () =
  let sim, n1, _n2, d1, _d2, _r1_addr, _r2_addr = rsvp_chain () in
  let sender = Ipaddr.v4 10 0 0 1 in
  let flow = flow_of_id 3 in
  Rp_sim.Net.inject n1 (Rp_control.Rsvp.path_packet ~sender ~flow) ~at:0L;
  (* A refresh PATH well before expiry. *)
  Rp_sim.Net.inject n1 (Rp_control.Rsvp.path_packet ~sender ~flow)
    ~at:20_000_000_000L;
  ignore (Rp_sim.Sim.run sim);
  let p, _ =
    Rp_control.Rsvp.tick d1 ~now:40_000_000_000L ~lifetime_ns:30_000_000_000L
  in
  check int_t "refreshed state survives" 0 p;
  check int_t "path still present" 1 (List.length (Rp_control.Rsvp.path_state d1))


(* --- robustness ------------------------------------------------------------ *)

(* The control path must never raise, whatever arrives on the socket:
   every input yields Ok or Error. *)
let prop_pmgr_never_raises =
  qtest ~count:500 "pmgr: arbitrary input never raises"
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 80))
    (fun input ->
      let r = mk_router () in
      match Rp_control.Pmgr.exec r input with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck2.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) input)

(* Mutated valid commands: token-level fuzz around the real grammar. *)
let prop_pmgr_mutated_commands =
  let commands =
    [|
      "modload drr"; "modload stats"; "create drr quantum=512"; "create stats";
      "bind 1 <10.0.0.0/8, *, UDP, *, *, *>"; "attach 1 1"; "detach 1";
      "free 1"; "show instances"; "show flows"; "route add 10.0.0.0/8 0";
      "reserve 1 1000 <10.0.0.5, 192.168.1.1, UDP, 5000, 9000, if0>";
      "message drr stats 1"; "unbind 1 <*, *, *, *, *, *>"; "modunload drr";
    |]
  in
  qtest ~count:200 "pmgr: random command sequences never raise"
    QCheck2.Gen.(
      list_size (int_range 1 15)
        (pair (int_bound (Array.length commands - 1)) (int_bound 99)))
    (fun script ->
      let r = mk_router () in
      List.for_all
        (fun (i, mutation) ->
          let cmd = commands.(i) in
          (* Occasionally corrupt a character. *)
          let cmd =
            if mutation < 20 && String.length cmd > 3 then
              String.mapi
                (fun j c -> if j = mutation mod String.length cmd then '#' else c)
                cmd
            else cmd
          in
          match Rp_control.Pmgr.exec r cmd with
          | Ok _ | Error _ -> true
          | exception e ->
            QCheck2.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) cmd)
        script)

let test_pmgr_classifier_commands () =
  let r = mk_router () in
  check string_t "default mode" "pergate"
    (ok (Rp_control.Pmgr.exec r "classifier show"));
  check string_t "switch on" "classifier = compiled"
    (ok (Rp_control.Pmgr.exec r "classifier compiled on"));
  check string_t "mode reported" "compiled"
    (ok (Rp_control.Pmgr.exec r "classifier show"));
  check bool_t "aiu switched" true
    (Rp_classifier.Aiu.mode (Router.aiu r) = `Compiled);
  check string_t "switch off" "classifier = pergate"
    (ok (Rp_control.Pmgr.exec r "classifier compiled off"));
  check bool_t "back to per-gate" true
    (Rp_classifier.Aiu.mode (Router.aiu r) = `Per_gate);
  check bool_t "bad subcommand rejected" true
    (Result.is_error (Rp_control.Pmgr.exec r "classifier compiled maybe"))

let () =
  Alcotest.run "rp_control"
    [
      ( "pmgr",
        [
          Alcotest.test_case "modload/create/bind/attach" `Quick
            test_pmgr_modload_create_bind;
          Alcotest.test_case "paper-style script" `Quick test_pmgr_paper_script;
          Alcotest.test_case "errors" `Quick test_pmgr_errors;
          Alcotest.test_case "script error line" `Quick test_pmgr_script_error_line;
          Alcotest.test_case "show routes/flows" `Quick test_pmgr_show_routes_flows;
          Alcotest.test_case "fault commands" `Quick test_pmgr_fault_commands;
          Alcotest.test_case "classifier commands" `Quick
            test_pmgr_classifier_commands;
        ] );
      ( "ssp",
        [
          prop_ssp_codec_roundtrip;
          Alcotest.test_case "v6 codec" `Quick test_ssp_codec_v6;
          Alcotest.test_case "installs reservation" `Quick
            test_ssp_installs_reservation;
          Alcotest.test_case "no drr = failure" `Quick test_ssp_no_drr_counts_failure;
        ] );
      ( "robustness",
        [ prop_pmgr_never_raises; prop_pmgr_mutated_commands ] );
      ( "rsvp",
        [
          prop_rsvp_codec_roundtrip;
          Alcotest.test_case "path/resv end to end" `Quick test_rsvp_end_to_end;
          Alcotest.test_case "resv without path" `Quick
            test_rsvp_resv_without_path_fails;
          Alcotest.test_case "refresh keeps soft state" `Quick
            test_rsvp_refresh_keeps_state;
        ] );
    ]
