(* Tests for rp_core: gates, plugin codes, the PCU lifecycle, the
   routing table, and the IP core data path with its cost accounting. *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let err label = function
  | Ok _ -> Alcotest.failf "%s: expected an error" label
  | Error _ -> ()

(* --- Gate ------------------------------------------------------------ *)

let test_gate_numbering () =
  check int_t "count" (List.length Gate.all) Gate.count;
  List.iter
    (fun g ->
      match Gate.of_int (Gate.to_int g) with
      | Some g' -> check bool_t (Gate.name g) true (Gate.equal g g')
      | None -> Alcotest.failf "of_int failed for %s" (Gate.name g))
    Gate.all;
  check bool_t "of_int out of range" true (Gate.of_int Gate.count = None);
  List.iter
    (fun g ->
      match Gate.of_name (Gate.name g) with
      | Some g' -> check bool_t "name roundtrip" true (Gate.equal g g')
      | None -> Alcotest.failf "of_name failed for %s" (Gate.name g))
    Gate.all

let test_plugin_codes () =
  let code = Plugin.code ~gate:Gate.Scheduling ~impl:3 in
  check bool_t "gate recovered" true
    (Plugin.gate_of_code code = Some Gate.Scheduling);
  check int_t "impl recovered" 3 (Plugin.impl_of_code code);
  (* Upper 16 bits are the type, lower 16 the implementation. *)
  check int_t "packing" ((Gate.to_int Gate.Scheduling lsl 16) lor 3) code

(* --- PCU lifecycle ---------------------------------------------------- *)

let empty_options = Empty_plugin.make ~gate:Gate.Ip_options ~name:"empty-opt"

let test_pcu_modload () =
  let pcu = Pcu.create () in
  ok (Pcu.modload pcu empty_options);
  check bool_t "loaded" true (Pcu.is_loaded pcu "empty-opt");
  err "double load" (Pcu.modload pcu empty_options);
  ok (Pcu.modunload pcu "empty-opt");
  check bool_t "unloaded" false (Pcu.is_loaded pcu "empty-opt");
  err "unload missing" (Pcu.modunload pcu "empty-opt")

let test_pcu_instance_lifecycle () =
  let pcu = Pcu.create () in
  ok (Pcu.modload pcu empty_options);
  let inst = ok (Pcu.create_instance pcu ~plugin:"empty-opt" []) in
  check bool_t "found" true (Pcu.find_instance pcu inst.Plugin.instance_id <> None);
  (* Plugins with live instances cannot be unloaded. *)
  err "unload with instance" (Pcu.modunload pcu "empty-opt");
  let f = Rp_classifier.Filter.v4 ~proto:Proto.udp () in
  ok (Pcu.register_instance pcu ~instance:inst.Plugin.instance_id f);
  check int_t "binding recorded" 1
    (List.length (Pcu.bindings_of pcu ~instance:inst.Plugin.instance_id));
  ok (Pcu.free_instance pcu inst.Plugin.instance_id);
  check bool_t "gone" true (Pcu.find_instance pcu inst.Plugin.instance_id = None);
  ok (Pcu.modunload pcu "empty-opt")

let test_pcu_register_routes_to_gate_table () =
  let pcu = Pcu.create () in
  ok (Pcu.modload pcu empty_options);
  let inst = ok (Pcu.create_instance pcu ~plugin:"empty-opt" []) in
  let f = Rp_classifier.Filter.v4 ~proto:Proto.udp () in
  ok (Pcu.register_instance pcu ~instance:inst.Plugin.instance_id f);
  let dag =
    Rp_classifier.Aiu.filter_table (Pcu.aiu pcu) ~gate:(Gate.to_int Gate.Ip_options)
  in
  check int_t "filter in the ip-options table" 1 (Rp_classifier.Dag.length dag);
  err "deregister unknown filter"
    (Pcu.deregister_instance pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.tcp ()));
  ok (Pcu.deregister_instance pcu ~instance:inst.Plugin.instance_id f);
  check int_t "filter removed" 0 (Rp_classifier.Dag.length dag)

let test_pcu_messages () =
  let pcu = Pcu.create () in
  ok (Pcu.modload pcu (module Stats_plugin));
  check string_t "plugin-info" Stats_plugin.description
    (ok (Pcu.message pcu ~plugin:"stats" "plugin-info" ""));
  err "unknown message" (Pcu.message pcu ~plugin:"stats" "nonsense" "");
  err "unknown plugin" (Pcu.message pcu ~plugin:"ghost" "plugin-info" "")

(* --- Route table ------------------------------------------------------ *)

let test_route_table () =
  let rt = Route_table.create () in
  Route_table.add rt
    { Route_table.prefix = Prefix.of_string "0.0.0.0/0"; next_hop = None; iface = 0; metric = 10 };
  Route_table.add rt
    { Route_table.prefix = Prefix.of_string "192.168.0.0/16";
      next_hop = Some (Ipaddr.v4 10 0 0 254); iface = 1; metric = 0 };
  (match Route_table.lookup rt (Ipaddr.v4 192 168 5 5) with
   | Some r -> check int_t "specific wins" 1 r.Route_table.iface
   | None -> Alcotest.fail "no route");
  (match Route_table.lookup rt (Ipaddr.v4 8 8 8 8) with
   | Some r -> check int_t "default" 0 r.Route_table.iface
   | None -> Alcotest.fail "no default");
  (* A worse metric must not replace an existing route. *)
  Route_table.add rt
    { Route_table.prefix = Prefix.of_string "192.168.0.0/16"; next_hop = None;
      iface = 2; metric = 100 };
  (match Route_table.lookup rt (Ipaddr.v4 192 168 5 5) with
   | Some r -> check int_t "metric respected" 1 r.Route_table.iface
   | None -> Alcotest.fail "no route");
  Route_table.remove rt (Prefix.of_string "192.168.0.0/16");
  match Route_table.lookup rt (Ipaddr.v4 192 168 5 5) with
  | Some r -> check int_t "falls to default" 0 r.Route_table.iface
  | None -> Alcotest.fail "no route after remove"

(* --- IP core ----------------------------------------------------------- *)

let mk_router ?(mode = Router.Plugins) ?(gates = Gate.all) () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~mode ~gates ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  r

let mk_pkt ?(ttl = 64) ?(dst = "192.168.1.1") ?(proto = Proto.udp) ?(sport = 1000) () =
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.of_string dst) ~proto
      ~sport ~dport:9000 ~iface:0
  in
  Mbuf.synth ~ttl ~key ~len:1000 ()

let test_forwarding_basic () =
  let r = mk_router () in
  let m = mk_pkt () in
  (match Ip_core.process r ~now:0L m with
   | Ip_core.Enqueued 1 -> ()
   | v -> Alcotest.failf "unexpected verdict: %a" Ip_core.pp_verdict v);
  check int_t "ttl decremented" 63 m.Mbuf.ttl;
  check bool_t "queued on if1" true (Iface.backlog (Router.iface r 1) = 1);
  (* No route: drop. *)
  match Ip_core.process r ~now:0L (mk_pkt ~dst:"8.8.8.8" ()) with
  | Ip_core.Dropped _ -> ()
  | v -> Alcotest.failf "expected drop, got %a" Ip_core.pp_verdict v

let test_ttl_expiry () =
  let r = mk_router () in
  match Ip_core.process r ~now:0L (mk_pkt ~ttl:1 ()) with
  | Ip_core.Dropped reason ->
    check bool_t "reason mentions ttl" true
      (String.length reason >= 3 && String.sub reason 0 3 = "ttl")
  | v -> Alcotest.failf "expected ttl drop, got %a" Ip_core.pp_verdict v

let test_firewall_gate_drops () =
  let r = mk_router () in
  ok (Pcu.modload r.Router.pcu (module Firewall_plugin));
  let deny =
    ok (Pcu.create_instance r.Router.pcu ~plugin:"firewall" [ ("policy", "deny") ])
  in
  let f = Rp_classifier.Filter.v4 ~proto:Proto.tcp () in
  ok (Pcu.register_instance r.Router.pcu ~instance:deny.Plugin.instance_id f);
  (match Ip_core.process r ~now:0L (mk_pkt ~proto:Proto.tcp ()) with
   | Ip_core.Dropped "firewall policy" -> ()
   | v -> Alcotest.failf "expected firewall drop, got %a" Ip_core.pp_verdict v);
  (* UDP does not match the deny filter. *)
  match Ip_core.process r ~now:0L (mk_pkt ~proto:Proto.udp ()) with
  | Ip_core.Enqueued 1 -> ()
  | v -> Alcotest.failf "expected forward, got %a" Ip_core.pp_verdict v

let test_most_specific_firewall_policy () =
  (* Broad deny with a narrow accept: the most specific filter wins,
     like rule tables but via classification. *)
  let r = mk_router () in
  ok (Pcu.modload r.Router.pcu (module Firewall_plugin));
  let deny =
    ok (Pcu.create_instance r.Router.pcu ~plugin:"firewall" [ ("policy", "deny") ])
  in
  let accept =
    ok (Pcu.create_instance r.Router.pcu ~plugin:"firewall" [ ("policy", "accept") ])
  in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:deny.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~src:(Prefix.of_string "10.0.0.0/8") ()));
  ok
    (Pcu.register_instance r.Router.pcu ~instance:accept.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~src:(Prefix.of_string "10.0.0.1") ()));
  (match Ip_core.process r ~now:0L (mk_pkt ()) with
   | Ip_core.Enqueued _ -> ()  (* src 10.0.0.1 hits the narrow accept *)
   | v -> Alcotest.failf "expected accept, got %a" Ip_core.pp_verdict v);
  let other =
    Mbuf.synth
      ~key:
        (Flow_key.make ~src:(Ipaddr.v4 10 0 0 2) ~dst:(Ipaddr.v4 192 168 1 1)
           ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0)
      ~len:100 ()
  in
  match Ip_core.process r ~now:0L other with
  | Ip_core.Dropped _ -> ()
  | v -> Alcotest.failf "expected deny, got %a" Ip_core.pp_verdict v

let test_options_gate_v6 () =
  let r = mk_router () in
  Router.add_route r (Prefix.of_string "2001:db8::/32") ~iface:1 ();
  ok (Pcu.modload r.Router.pcu (module Opt_plugin));
  let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:"ip6-options" []) in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v6 ()));
  let k =
    Flow_key.make ~src:(Ipaddr.of_string "2001:db8::1")
      ~dst:(Ipaddr.of_string "2001:db8::2") ~proto:Proto.udp ~sport:1 ~dport:2
      ~iface:0
  in
  let m = Mbuf.synth ~key:k ~len:100 () in
  m.Mbuf.options <- [ Ipv6_header.Option_tlv.Router_alert 0 ];
  (match Ip_core.process r ~now:0L m with
   | Ip_core.Enqueued 1 -> ()
   | v -> Alcotest.failf "expected forward, got %a" Ip_core.pp_verdict v);
  check bool_t "router-alert tag" true (Mbuf.has_tag m "router-alert");
  (* An option demanding discard (type high bits 01) drops the packet. *)
  let m2 = Mbuf.synth ~key:{ k with Flow_key.sport = 7 } ~len:100 () in
  m2.Mbuf.options <- [ Ipv6_header.Option_tlv.Unknown (0x40, "x") ];
  match Ip_core.process r ~now:0L m2 with
  | Ip_core.Dropped _ -> ()
  | v -> Alcotest.failf "expected option drop, got %a" Ip_core.pp_verdict v

let test_punt_handler () =
  let r = mk_router () in
  let seen = ref 0 in
  Router.set_punt r ~proto:Proto.ssp (fun ~now:_ _ ->
      incr seen;
      Router.Punt_consume);
  (match Ip_core.process r ~now:0L (mk_pkt ~proto:Proto.ssp ()) with
   | Ip_core.Delivered_local -> ()
   | v -> Alcotest.failf "expected local delivery, got %a" Ip_core.pp_verdict v);
  check int_t "handler ran" 1 !seen;
  Router.clear_punt r ~proto:Proto.ssp;
  match Ip_core.process r ~now:0L (mk_pkt ~proto:Proto.ssp ()) with
  | Ip_core.Enqueued _ -> ()
  | v -> Alcotest.failf "expected forward after clear, got %a" Ip_core.pp_verdict v

let test_local_delivery () =
  let r = mk_router () in
  Router.add_local_addr r (Ipaddr.v4 192 168 1 1);
  match Ip_core.process r ~now:0L (mk_pkt ~dst:"192.168.1.1" ()) with
  | Ip_core.Delivered_local -> ()
  | v -> Alcotest.failf "expected local, got %a" Ip_core.pp_verdict v

(* --- Cost accounting --------------------------------------------------- *)

(* The heart of Table 3: best-effort ~6460 cycles; the framework with
   three empty-plugin gates ~500 more (flow hash + cached accesses +
   3 indirect calls). *)
let test_cost_overhead_shape () =
  (* Best effort. *)
  let r0 = mk_router ~mode:Router.Best_effort () in
  Cost.reset ();
  ignore (Ip_core.process r0 ~now:0L (mk_pkt ()));
  let best_effort = Cost.get () in
  check int_t "best effort is the base path" Cost.base_forward best_effort;
  (* Plugins, 3 gates, empty plugins bound to everything. *)
  let gates = [ Gate.Ip_options; Gate.Security_in; Gate.Stats ] in
  let r1 = mk_router ~mode:Router.Plugins ~gates () in
  List.iter
    (fun (g, n) ->
      ok (Pcu.modload r1.Router.pcu (Empty_plugin.make ~gate:g ~name:n));
      let i = ok (Pcu.create_instance r1.Router.pcu ~plugin:n []) in
      ok
        (Pcu.register_instance r1.Router.pcu ~instance:i.Plugin.instance_id
           (Rp_classifier.Filter.v4 ())))
    [ (Gate.Ip_options, "e0"); (Gate.Security_in, "e1"); (Gate.Stats, "e2") ];
  (* Warm the flow cache with the first packet. *)
  ignore (Ip_core.process r1 ~now:0L (mk_pkt ()));
  Cost.reset ();
  ignore (Ip_core.process r1 ~now:1L (mk_pkt ()));
  let cached = Cost.get () in
  let overhead = cached - best_effort in
  (* ~500 cycles in the paper; our model composes 17 (hash) + memory
     accesses + 3 * 150 (gates).  Accept the 400-700 band. *)
  check bool_t
    (Printf.sprintf "plugin overhead ≈500 cycles (got %d)" overhead)
    true
    (overhead >= 400 && overhead <= 700);
  (* The first packet of a flow is much more expensive (filter-table
     walks for every gate). *)
  let r2 = mk_router ~mode:Router.Plugins ~gates () in
  Cost.reset ();
  ignore (Ip_core.process r2 ~now:0L (mk_pkt ()));
  let uncached = Cost.get () in
  check bool_t "uncached > cached" true (uncached > cached)

let test_gate_disabled_costs_nothing () =
  let r = mk_router ~mode:Router.Plugins ~gates:[] () in
  Cost.reset ();
  ignore (Ip_core.process r ~now:0L (mk_pkt ()));
  check int_t "no gates = base" Cost.base_forward (Cost.get ())

(* --- Fault isolation --------------------------------------------------- *)

let bind_fault_plugin ?(config = [ ("mode", "raise"); ("every", "1") ]) r =
  ok (Pcu.modload r.Router.pcu (Fault_plugin.make ~gate:Gate.Firewall ~name:"fault-fw"));
  let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:"fault-fw" config) in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
  inst

let test_fault_contained_and_quarantined () =
  let r = mk_router () in
  let inst = bind_fault_plugin r in
  let id = inst.Plugin.instance_id in
  let faults0 = Rp_obs.Counter.get (Gate.faults Gate.Firewall) in
  let threshold = Pcu.quarantine_threshold r.Router.pcu in
  (* Every packet faults; the default policy is fail-closed: the
     packet is dropped, [process] never sees the exception. *)
  for i = 1 to threshold do
    match Ip_core.process r ~now:(Int64.of_int i) (mk_pkt ~sport:(3000 + i) ()) with
    | Ip_core.Dropped "plugin fault" -> ()
    | v -> Alcotest.failf "packet %d: expected fault drop, got %a" i Ip_core.pp_verdict v
  done;
  check int_t "gate fault counter" threshold
    (Rp_obs.Counter.get (Gate.faults Gate.Firewall) - faults0);
  check bool_t "auto-quarantined at the threshold" true
    (Pcu.is_quarantined r.Router.pcu id);
  (* Bindings are torn down: traffic degrades to the gate default. *)
  (match Ip_core.process r ~now:99L (mk_pkt ~sport:4000 ()) with
   | Ip_core.Enqueued 1 -> ()
   | v -> Alcotest.failf "expected default-path forward, got %a" Ip_core.pp_verdict v);
  check int_t "no further faults once quarantined" threshold
    (Rp_obs.Counter.get (Gate.faults Gate.Firewall) - faults0);
  (* Re-binding a quarantined instance is refused; restore re-arms it. *)
  err "register while quarantined"
    (Pcu.register_instance r.Router.pcu ~instance:id
       (Rp_classifier.Filter.v4 ~proto:Proto.tcp ()));
  ok (Router.restore r id);
  check bool_t "restored" false (Pcu.is_quarantined r.Router.pcu id);
  match Ip_core.process r ~now:100L (mk_pkt ~sport:5000 ()) with
  | Ip_core.Dropped "plugin fault" -> ()
  | v -> Alcotest.failf "expected fault drop after restore, got %a" Ip_core.pp_verdict v

let test_fault_continue_policy () =
  let r = mk_router () in
  r.Router.fault_policy <- Fault.Continue_packet;
  ignore (bind_fault_plugin r);
  (* Fail-open: the faulting gate is skipped, the packet forwards. *)
  for i = 1 to 5 do
    match Ip_core.process r ~now:(Int64.of_int i) (mk_pkt ~sport:(3000 + i) ()) with
    | Ip_core.Enqueued 1 -> ()
    | v -> Alcotest.failf "packet %d: expected forward, got %a" i Ip_core.pp_verdict v
  done

let test_fault_unbind_policy () =
  let r = mk_router () in
  r.Router.fault_policy <- Fault.Unbind;
  let inst = bind_fault_plugin r in
  (* One fault is enough: the instance is quarantined immediately and
     this very packet continues on the default path. *)
  (match Ip_core.process r ~now:1L (mk_pkt ()) with
   | Ip_core.Enqueued 1 -> ()
   | v -> Alcotest.failf "expected forward, got %a" Ip_core.pp_verdict v);
  check bool_t "quarantined on first fault" true
    (Pcu.is_quarantined r.Router.pcu inst.Plugin.instance_id)

let test_fault_cycle_budget () =
  let r = mk_router () in
  r.Router.cycle_budget <- Some 10_000;
  let inst =
    bind_fault_plugin r ~config:[ ("mode", "burn"); ("burn", "50000") ]
  in
  (match Ip_core.process r ~now:1L (mk_pkt ()) with
   | Ip_core.Dropped "plugin fault" -> ()
   | v -> Alcotest.failf "expected budget drop, got %a" Ip_core.pp_verdict v);
  match
    List.find_opt
      (fun (i : Pcu.fault_info) ->
        i.Pcu.instance.Plugin.instance_id = inst.Plugin.instance_id)
      (Pcu.fault_report r.Router.pcu)
  with
  | Some i ->
    check int_t "one fault" 1 i.Pcu.total_faults;
    check bool_t "reason mentions the budget" true
      (String.length i.Pcu.last_fault >= 12
       && String.sub i.Pcu.last_fault 0 12 = "cycle budget")
  | None -> Alcotest.fail "instance missing from fault report"

let test_fault_consecutive_resets_on_success () =
  let r = mk_router () in
  (* Faults every 2nd packet: consecutive count keeps resetting, so
     the instance must never be quarantined. *)
  let inst = bind_fault_plugin r ~config:[ ("mode", "raise"); ("every", "2") ] in
  for i = 1 to 20 do
    ignore (Ip_core.process r ~now:(Int64.of_int i) (mk_pkt ~sport:(3000 + i) ()))
  done;
  check bool_t "alternating faults never quarantine" false
    (Pcu.is_quarantined r.Router.pcu inst.Plugin.instance_id)

let test_qdisc_fault_contained () =
  let r = mk_router () in
  let raising_sched =
    {
      (Plugin.simple ~instance_id:77 ~code:0 ~plugin_name:"bad-sched"
         ~gate:Gate.Scheduling (fun _ _ -> Plugin.Continue))
      with
      Plugin.scheduler =
        Some
          {
            Plugin.enqueue = (fun ~now:_ _ _ -> failwith "qdisc boom");
            dequeue = (fun ~now:_ -> None);
            backlog = (fun () -> 0);
            sched_stats = (fun () -> []);
          };
    }
  in
  Iface.attach_scheduler (Router.iface r 1) raising_sched;
  let faults0 = Rp_obs.Counter.get (Gate.faults Gate.Scheduling) in
  (match Ip_core.process r ~now:0L (mk_pkt ()) with
   | Ip_core.Dropped "output queue" -> ()
   | v -> Alcotest.failf "expected queue drop, got %a" Ip_core.pp_verdict v);
  check int_t "scheduling fault counted" 1
    (Rp_obs.Counter.get (Gate.faults Gate.Scheduling) - faults0)

(* --- data-path metering fixes ------------------------------------------ *)

let test_partial_fragment_loss_is_visible () =
  let ifaces =
    [ Iface.create ~id:0 (); Iface.create ~id:1 ~mtu:296 ~fifo_limit:2 () ]
  in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let drops_counter = Rp_obs.Registry.counter "ip_core.fragment_drops" in
  let drops0 = Rp_obs.Counter.get drops_counter in
  (* 1000 bytes over a 296-byte MTU -> 4 fragments; only 2 fit the
     queue.  The datagram cannot reassemble, so the verdict is a drop
     and the lost fragments are counted. *)
  (match Ip_core.process r ~now:0L (mk_pkt ()) with
   | Ip_core.Dropped reason ->
     check bool_t
       (Printf.sprintf "partial-loss reason (%s)" reason)
       true
       (String.length reason >= 7 && String.sub reason 0 7 = "partial")
   | v -> Alcotest.failf "expected partial-loss drop, got %a" Ip_core.pp_verdict v);
  let lost = Rp_obs.Counter.get drops_counter - drops0 in
  check bool_t (Printf.sprintf "fragment drops counted (%d)" lost) true (lost > 0);
  check int_t "two fragments queued" 2 (Iface.backlog (Router.iface r 1))

let test_sched_gate_metering_parity () =
  let ifaces =
    [ Iface.create ~id:0 (); Iface.create ~id:1 ~fifo_limit:1 () ]
  in
  let r = Router.create ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let dispatch0 = Rp_obs.Counter.get (Gate.dispatch Gate.Scheduling) in
  let drops0 = Rp_obs.Counter.get (Gate.drops Gate.Scheduling) in
  Rp_obs.Trace.clear ();
  Rp_obs.Trace.enabled := true;
  ignore (Ip_core.process r ~now:0L (mk_pkt ()));
  (* Second packet overflows the 1-slot FIFO: a drop at the
     scheduling gate, metered like any other gate drop. *)
  (match Ip_core.process r ~now:1L (mk_pkt ~sport:1001 ()) with
   | Ip_core.Dropped "output queue" -> ()
   | v -> Alcotest.failf "expected queue drop, got %a" Ip_core.pp_verdict v);
  Rp_obs.Trace.enabled := false;
  check int_t "dispatch counted per packet" 2
    (Rp_obs.Counter.get (Gate.dispatch Gate.Scheduling) - dispatch0);
  check int_t "queue drop counted at the gate" 1
    (Rp_obs.Counter.get (Gate.drops Gate.Scheduling) - drops0);
  check bool_t "trace span emitted for the scheduling gate" true
    (List.exists
       (fun (s : Rp_obs.Trace.span) -> s.Rp_obs.Trace.name = "gate.scheduling")
       (Rp_obs.Trace.spans ()))

(* --- misc edge cases --------------------------------------------------- *)

let test_router_edge_cases () =
  check bool_t "no interfaces rejected" true
    (try ignore (Router.create ~ifaces:[] ()); false
     with Invalid_argument _ -> true);
  let r = mk_router () in
  check bool_t "bad iface id" true
    (try ignore (Router.iface r 99); false with Invalid_argument _ -> true);
  check bool_t "route to bad iface" true
    (try Router.add_route r (Prefix.of_string "1.0.0.0/8") ~iface:9 (); false
     with Invalid_argument _ -> true);
  Router.add_local_addr r (Ipaddr.v4 1 2 3 4);
  Router.add_local_addr r (Ipaddr.v4 1 2 3 4);
  check int_t "local addrs deduplicated" 1 (List.length r.Router.local_addrs);
  check bool_t "local_addr_for family" true
    (Router.local_addr_for r (Ipaddr.of_string "::1") = None)

let test_iface_attach_rejects_non_scheduler () =
  let ifc = Iface.create ~id:0 () in
  let inst =
    Plugin.simple ~instance_id:1 ~code:0 ~plugin_name:"x" ~gate:Gate.Stats
      (fun _ _ -> Plugin.Continue)
  in
  check bool_t "rejected" true
    (try Iface.attach_scheduler ifc inst; false with Invalid_argument _ -> true)

let test_stats_history_on_evict () =
  let r = mk_router () in
  ok (Pcu.modload r.Router.pcu (module Stats_plugin));
  let inst =
    ok (Pcu.create_instance r.Router.pcu ~plugin:"stats" [ ("history", "4") ])
  in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v4 ()));
  for i = 0 to 2 do
    ignore (Ip_core.process r ~now:(Int64.of_int i) (mk_pkt ~sport:(2000 + i) ()))
  done;
  (* Expire everything: closed flows land in the history. *)
  ignore (Router.expire_flows r ~now:1_000_000_000L ~idle_ns:1L);
  match Stats_plugin.totals_of ~instance_id:inst.Plugin.instance_id with
  | Some t ->
    check int_t "flows closed" 3 t.Stats_plugin.flows_closed;
    check int_t "history recorded" 3 (List.length t.Stats_plugin.history)
  | None -> Alcotest.fail "no totals"

(* --- batch path -------------------------------------------------------- *)

let verdict_equal a b =
  match (a, b) with
  | Ip_core.Enqueued x, Ip_core.Enqueued y -> x = y
  | Ip_core.Delivered_local, Ip_core.Delivered_local -> true
  | Ip_core.Absorbed, Ip_core.Absorbed -> true
  | Ip_core.Dropped x, Ip_core.Dropped y -> String.equal x y
  | _ -> false

(* A router with enough bound plugins that batching has something to
   interleave: a TCP deny at the firewall gate, stats on everything,
   one local address, one route, and the no-route default drop. *)
let batch_router () =
  let r = mk_router () in
  Router.add_local_addr r (Ipaddr.v4 192 168 7 7);
  ok (Pcu.modload r.Router.pcu (module Firewall_plugin));
  let deny =
    ok (Pcu.create_instance r.Router.pcu ~plugin:"firewall" [ ("policy", "deny") ])
  in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:deny.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.tcp ()));
  ok (Pcu.modload r.Router.pcu (module Stats_plugin));
  let st = ok (Pcu.create_instance r.Router.pcu ~plugin:"stats" []) in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:st.Plugin.instance_id
       (Rp_classifier.Filter.v4 ()));
  r

(* Mixed stream: forwards, no-route drops, TTL expiries, firewall
   drops, local deliveries — every verdict arm of the data path. *)
let batch_stream ~seed ~count =
  let rng = Random.State.make [| seed |] in
  Array.init count (fun _ ->
      let roll = Random.State.int rng 10 in
      let dst =
        if roll = 0 then "8.8.8.8"
        else if roll = 1 then "192.168.7.7"
        else Printf.sprintf "192.168.1.%d" (1 + Random.State.int rng 8)
      in
      let ttl = if roll = 2 then 1 else 64 in
      let proto = if roll >= 8 then Proto.tcp else Proto.udp in
      let sport = 1024 + Random.State.int rng 16 in
      mk_pkt ~ttl ~dst ~proto ~sport ())

(* Run the same stream through [process] per packet on one router and
   through [process_batch] on an identical second router; return the
   verdict arrays, the charged model cycles of each, and the output
   backlogs. *)
let batch_vs_packet ~seed ~count =
  let a = batch_router () in
  let b = batch_router () in
  let pkts_a = batch_stream ~seed ~count in
  let pkts_b = batch_stream ~seed ~count in
  let va, cost_a =
    Cost.measure (fun () -> Array.map (Ip_core.process a ~now:0L) pkts_a)
  in
  let acc = ref [] in
  let (), cost_b =
    Cost.measure (fun () ->
        Ip_core.process_batch b ~now:0L pkts_b ~n:count ~emit:(fun _ v ->
            acc := v :: !acc))
  in
  let vb = Array.of_list (List.rev !acc) in
  let backlog r = Iface.backlog (Router.iface r 1) in
  (va, vb, cost_a, cost_b, backlog a, backlog b)

let test_batch_equals_packet () =
  let va, vb, cost_a, cost_b, qa, qb = batch_vs_packet ~seed:7 ~count:64 in
  check int_t "one verdict per packet" (Array.length va) (Array.length vb);
  Array.iteri
    (fun i v ->
      if not (verdict_equal v vb.(i)) then
        Alcotest.failf "packet %d: %a per-packet vs %a batched" i
          Ip_core.pp_verdict v Ip_core.pp_verdict vb.(i))
    va;
  check int_t "identical model cycles" cost_a cost_b;
  check int_t "identical output backlog" qa qb

let prop_batch_equals_packet =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"process_batch matches process"
       (QCheck2.Gen.int_bound 100_000)
       (fun seed ->
         let va, vb, cost_a, cost_b, qa, qb =
           batch_vs_packet ~seed ~count:32
         in
         cost_a = cost_b && qa = qb
         && Array.length va = Array.length vb
         && Array.for_all2 verdict_equal va vb))

let () =
  Alcotest.run "rp_core"
    [
      ( "gate",
        [
          Alcotest.test_case "numbering" `Quick test_gate_numbering;
          Alcotest.test_case "plugin codes" `Quick test_plugin_codes;
        ] );
      ( "pcu",
        [
          Alcotest.test_case "modload/unload" `Quick test_pcu_modload;
          Alcotest.test_case "instance lifecycle" `Quick test_pcu_instance_lifecycle;
          Alcotest.test_case "register routes to gate table" `Quick
            test_pcu_register_routes_to_gate_table;
          Alcotest.test_case "messages" `Quick test_pcu_messages;
        ] );
      ( "route_table",
        [ Alcotest.test_case "lpm + metric" `Quick test_route_table ] );
      ( "ip_core",
        [
          Alcotest.test_case "forwarding" `Quick test_forwarding_basic;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "firewall gate" `Quick test_firewall_gate_drops;
          Alcotest.test_case "most specific policy" `Quick
            test_most_specific_firewall_policy;
          Alcotest.test_case "ipv6 options gate" `Quick test_options_gate_v6;
          Alcotest.test_case "punt handler" `Quick test_punt_handler;
          Alcotest.test_case "local delivery" `Quick test_local_delivery;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batch = per-packet" `Quick test_batch_equals_packet;
          prop_batch_equals_packet;
        ] );
      ( "faults",
        [
          Alcotest.test_case "contain + auto-quarantine + restore" `Quick
            test_fault_contained_and_quarantined;
          Alcotest.test_case "continue policy" `Quick test_fault_continue_policy;
          Alcotest.test_case "unbind policy" `Quick test_fault_unbind_policy;
          Alcotest.test_case "cycle budget" `Quick test_fault_cycle_budget;
          Alcotest.test_case "success resets consecutive" `Quick
            test_fault_consecutive_resets_on_success;
          Alcotest.test_case "raising qdisc contained" `Quick
            test_qdisc_fault_contained;
        ] );
      ( "metering",
        [
          Alcotest.test_case "partial fragment loss" `Quick
            test_partial_fragment_loss_is_visible;
          Alcotest.test_case "scheduling gate parity" `Quick
            test_sched_gate_metering_parity;
        ] );
      ( "edges",
        [
          Alcotest.test_case "router edge cases" `Quick test_router_edge_cases;
          Alcotest.test_case "iface attach check" `Quick
            test_iface_attach_rejects_non_scheduler;
          Alcotest.test_case "stats flow history" `Quick test_stats_history_on_evict;
        ] );
      ( "cost",
        [
          Alcotest.test_case "overhead shape (Table 3)" `Quick
            test_cost_overhead_shape;
          Alcotest.test_case "no gates, no overhead" `Quick
            test_gate_disabled_costs_nothing;
        ] );
    ]
