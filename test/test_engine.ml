(* Tests for rp_engine: the SPSC ring (including with real producer /
   consumer domains), RSS shard stability, snapshot publication, and
   the sharded engine's fault path. *)

open Rp_pkt
open Rp_core
open Rp_engine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Spin until [pred] holds; domains are preemptively scheduled OS
   threads, so a bounded spin always observes a live worker's
   progress. *)
let wait ?(max_spins = 100_000_000) label pred =
  let spins = ref 0 in
  while (not (pred ())) && !spins < max_spins do
    incr spins;
    Domain.cpu_relax ()
  done;
  if not (pred ()) then Alcotest.failf "timeout waiting for %s" label

(* --- SPSC ring ------------------------------------------------------- *)

let test_spsc_capacity () =
  let q = Spsc.create ~capacity:5 ~dummy:(-1) in
  check int_t "rounded to power of two" 8 (Spsc.capacity q);
  for i = 0 to 7 do
    check bool_t "push below capacity" true (Spsc.push q i)
  done;
  check bool_t "push at capacity rejected" false (Spsc.push q 8);
  check int_t "length" 8 (Spsc.length q);
  (match Spsc.pop q with
   | Some 0 -> ()
   | _ -> Alcotest.fail "expected head element 0");
  check bool_t "push after pop" true (Spsc.push q 8);
  check bool_t "full again" false (Spsc.push q 9)

let spsc_fifo =
  qtest "fifo order, no loss/dup (single domain)"
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun xs ->
      let q = Spsc.create ~capacity:256 ~dummy:0 in
      List.iter (fun x -> assert (Spsc.push q x)) xs;
      let out = ref [] in
      let rec drain () =
        match Spsc.pop q with
        | Some x ->
          out := x :: !out;
          drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = xs && Spsc.is_empty q)

let spsc_pop_batch =
  qtest "pop_batch = repeated pop"
    QCheck2.Gen.(
      pair (list_size (int_range 0 64) int) (int_range 1 16))
    (fun (xs, max) ->
      let q = Spsc.create ~capacity:64 ~dummy:0 in
      List.iter (fun x -> assert (Spsc.push q x)) xs;
      let dst = Array.make max 0 in
      let out = ref [] in
      let rec drain () =
        let n = Spsc.pop_batch q ~max dst in
        if n > 0 then begin
          for i = 0 to n - 1 do
            out := dst.(i) :: !out
          done;
          drain ()
        end
      in
      drain ();
      List.rev !out = xs)

(* Real producer and consumer domains: every element arrives exactly
   once, in order, through an intentionally small ring so wrap-around
   and full/empty transitions are exercised under contention. *)
let spsc_concurrent =
  qtest ~count:10 "fifo order, no loss/dup (two domains)"
    QCheck2.Gen.(pair (int_range 1 2000) (int_range 1 32))
    (fun (n, cap) ->
      let q = Spsc.create ~capacity:cap ~dummy:(-1) in
      let consumer =
        Domain.spawn (fun () ->
            let out = ref [] in
            let got = ref 0 in
            while !got < n do
              match Spsc.pop q with
              | Some x ->
                out := x :: !out;
                incr got
              | None -> Domain.cpu_relax ()
            done;
            List.rev !out)
      in
      for i = 0 to n - 1 do
        while not (Spsc.push q i) do
          Domain.cpu_relax ()
        done
      done;
      Domain.join consumer = List.init n Fun.id)

let spsc_concurrent_batched =
  qtest ~count:10 "batched consumer sees every element once (two domains)"
    QCheck2.Gen.(pair (int_range 1 2000) (int_range 1 32))
    (fun (n, cap) ->
      let q = Spsc.create ~capacity:cap ~dummy:(-1) in
      let consumer =
        Domain.spawn (fun () ->
            let dst = Array.make 8 (-1) in
            let out = ref [] in
            let got = ref 0 in
            while !got < n do
              let k = Spsc.pop_batch q ~max:8 dst in
              if k = 0 then Domain.cpu_relax ()
              else begin
                for i = 0 to k - 1 do
                  out := dst.(i) :: !out
                done;
                got := !got + k
              end
            done;
            List.rev !out)
      in
      for i = 0 to n - 1 do
        while not (Spsc.push q i) do
          Domain.cpu_relax ()
        done
      done;
      Domain.join consumer = List.init n Fun.id)

(* --- router / traffic helpers ---------------------------------------- *)

let mk_router ?(gates = Gate.all) () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~gates ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  r

let mk_pkt ?(sport = 1000) ?(dport = 9000) ?(dst = Ipaddr.v4 192 168 1 1) () =
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst ~proto:Proto.udp ~sport
      ~dport ~iface:0
  in
  Mbuf.synth ~key ~len:1000 ()

(* A plugin whose handler bumps an atomic hit counter — callable from
   worker domains. *)
let counting_plugin ~gate ~name =
  let hits = Atomic.make 0 in
  let pm : (module Plugin.PLUGIN) =
    (module struct
      let name = name
      let gate = gate
      let description = "atomic hit counter"

      let create_instance ~instance_id ~code ~config =
        Ok
          (Plugin.simple ~instance_id ~code ~plugin_name:name ~gate ~config
             (fun _ctx _m ->
               Atomic.incr hits;
               Plugin.Continue))

      let message _ _ = Error "no messages"
    end)
  in
  (pm, hits)

let bind_counting r ~gate ~name =
  let pm, hits = counting_plugin ~gate ~name in
  ok (Pcu.modload r.Router.pcu pm);
  let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
  (inst, hits)

let counter_get name = Rp_obs.Counter.get (Rp_obs.Registry.counter name)

(* --- shard stability -------------------------------------------------- *)

let key_gen =
  QCheck2.Gen.(
    let octet = int_range 0 255 in
    map
      (fun (((a, b), (c, d)), ((sport, dport), iface)) ->
        Flow_key.make ~src:(Ipaddr.v4 a b c d) ~dst:(Ipaddr.v4 d c b a)
          ~proto:Proto.udp ~sport ~dport ~iface)
      (pair
         (pair (pair octet octet) (pair octet octet))
         (pair (pair (int_range 0 65535) (int_range 0 65535)) (int_range 0 3))))

let shard_stability =
  qtest "shard choice is stable and in range"
    QCheck2.Gen.(pair key_gen (int_range 1 8))
    (fun (key, n) ->
      let s = Flow_key.hash key land max_int mod n in
      s >= 0 && s < n && s = Flow_key.hash key land max_int mod n)

let test_flows_stay_on_owning_shard () =
  let r = mk_router () in
  let e = Engine.create (Sharded 2) r in
  let flows = 64 and per_flow = 3 in
  for round = 1 to per_flow do
    ignore round;
    for f = 0 to flows - 1 do
      ignore (Engine.submit e ~now:0L (mk_pkt ~sport:(2000 + f) ()))
    done
  done;
  let drained = Engine.flush e ~f:(fun _ -> ()) in
  check int_t "all packets drained" (flows * per_flow) drained;
  (* Every flow key cached by a shard hashes to that shard: no
     cross-shard flow-state access is possible. *)
  for i = 0 to 1 do
    List.iter
      (fun key ->
        check int_t
          (Printf.sprintf "flow %s owned by shard %d" (Flow_key.to_string key) i)
          i
          (Flow_key.hash key land max_int mod 2))
      (Engine.shard_flow_keys e i)
  done;
  let cached =
    List.length (Engine.shard_flow_keys e 0)
    + List.length (Engine.shard_flow_keys e 1)
  in
  check int_t "every flow cached exactly once" flows cached;
  Engine.stop e

(* --- snapshot publication --------------------------------------------- *)

let test_unbind_stops_classification () =
  let r = mk_router () in
  let inst, hits = bind_counting r ~gate:Gate.Firewall ~name:"count-fw" in
  let flushes0 =
    counter_get "engine.shard0.flow_flushes"
    + counter_get "engine.shard1.flow_flushes"
  in
  let deltas0 =
    counter_get "engine.shard0.delta_applies"
    + counter_get "engine.shard1.delta_applies"
  in
  let e = Engine.create (Sharded 2) r in
  let pump n =
    for f = 0 to n - 1 do
      ignore (Engine.submit e ~now:0L (mk_pkt ~sport:(3000 + f) ()))
    done;
    Engine.flush e ~f:(fun _ -> ())
  in
  check int_t "first wave drained" 40 (pump 40);
  check int_t "every packet hit the bound instance" 40 (Atomic.get hits);
  (* Tear the binding down and publish; once every shard has applied
     the unbind delta, no packet may reach the old instance. *)
  ok
    (Pcu.deregister_instance r.Router.pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
  Engine.publish e;
  wait "shards to sync" (fun () -> Engine.synced e);
  check int_t "second wave drained" 40 (pump 40);
  check int_t "no packet classified by the torn-down binding" 40
    (Atomic.get hits);
  (* The unbind travelled as a delta: each shard replayed it on its
     private AIU instead of recompiling, so no shard flushed its flow
     cache. *)
  let flushes =
    counter_get "engine.shard0.flow_flushes"
    + counter_get "engine.shard1.flow_flushes"
    - flushes0
  in
  let deltas =
    counter_get "engine.shard0.delta_applies"
    + counter_get "engine.shard1.delta_applies"
    - deltas0
  in
  check bool_t "each shard applied the unbind as a delta" true (deltas >= 2);
  check int_t "no shard recompiled (flow caches kept)" 0 flushes;
  Engine.stop e

let test_quarantine_while_draining () =
  let r = mk_router () in
  ok
    (Pcu.modload r.Router.pcu
       (Fault_plugin.make ~gate:Gate.Firewall ~name:"fault-fw"));
  let inst =
    ok
      (Pcu.create_instance r.Router.pcu ~plugin:"fault-fw"
         [ ("mode", "raise"); ("every", "1") ])
  in
  let id = inst.Plugin.instance_id in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:id
       (Rp_classifier.Filter.v4 ~proto:Proto.udp ()));
  let e = Engine.create (Sharded 2) r in
  let outcomes = Hashtbl.create 4 in
  let record (res : Shard.result) =
    let k =
      match res.Shard.outcome with
      | Shard.Forwarded _ -> "forwarded"
      | Shard.Absorbed -> "absorbed"
      | Shard.Dropped _ -> "dropped"
    in
    Hashtbl.replace outcomes k (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes k))
  in
  let threshold = Pcu.quarantine_threshold r.Router.pcu in
  (* Enough faulting packets on each shard to cross the threshold. *)
  for f = 0 to (4 * threshold) - 1 do
    ignore (Engine.submit e ~now:0L (mk_pkt ~sport:(4000 + f) ()))
  done;
  ignore (Engine.flush e ~f:record);
  check bool_t "instance auto-quarantined from the drain path" true
    (Pcu.is_quarantined r.Router.pcu id);
  (* The quarantine republished; once shards sync, traffic takes the
     gate's default path and forwards. *)
  wait "shards to sync after quarantine" (fun () -> Engine.synced e);
  Hashtbl.reset outcomes;
  for f = 0 to 19 do
    ignore (Engine.submit e ~now:0L (mk_pkt ~sport:(6000 + f) ()))
  done;
  ignore (Engine.flush e ~f:record);
  check int_t "all packets forward once quarantined" 20
    (Option.value ~default:0 (Hashtbl.find_opt outcomes "forwarded"));
  Engine.stop e

(* --- control-plane churn ----------------------------------------------- *)

(* Selective invalidation keeps the FIX fast path for unrelated flows:
   after a filter change matching half the flows, exactly those flows
   take one stale-FIX reclassification and the rest keep hitting. *)
let test_selective_invalidation_keeps_fast_path () =
  let r = mk_router () in
  ignore (bind_counting r ~gate:Gate.Firewall ~name:"fix-fw");
  let e = Engine.create Inline r in
  (* Eight persistent mbufs (so the FIX survives between submissions);
     half the flows target 192.168.1.x, half 192.168.2.x. *)
  let mbufs =
    Array.init 8 (fun f ->
        let dst =
          if f < 4 then Ipaddr.v4 192 168 1 (1 + f)
          else Ipaddr.v4 192 168 2 (1 + f)
        in
        mk_pkt ~sport:(10_000 + f) ~dst ())
  in
  let pump () =
    Array.iter (fun m -> assert (Engine.submit e ~now:0L m)) mbufs;
    ignore (Engine.flush e ~f:(fun _ -> ()))
  in
  pump ();
  let stale_warm = counter_get "aiu.fix_stale" in
  pump ();
  check int_t "warm flows never reclassify" 0
    (counter_get "aiu.fix_stale" - stale_warm);
  (* Bind a filter matching only the 192.168.1.x flows. *)
  let pm, _ = counting_plugin ~gate:Gate.Firewall ~name:"fix-fw2" in
  ok (Pcu.modload r.Router.pcu pm);
  let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:"fix-fw2" []) in
  let inv0 = counter_get "flow_table.invalidated" in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
       (Rp_classifier.Filter.v4
          ~dst:(Prefix.of_string "192.168.1.0/24")
          ()));
  Engine.maybe_publish e;
  check int_t "only the matching flows were invalidated" 4
    (counter_get "flow_table.invalidated" - inv0);
  let stale0 = counter_get "aiu.fix_stale" in
  let hits0 = counter_get "aiu.fix_hits" in
  pump ();
  check int_t "stale FIXes = invalidated flows, nothing else" 4
    (counter_get "aiu.fix_stale" - stale0);
  check bool_t "unrelated flows kept their fast path" true
    (counter_get "aiu.fix_hits" - hits0 >= 4);
  Engine.stop e

(* Random churn equivalence: the same script of
   bind/unbind/quarantine/restore commands interleaved with traffic,
   driven against an inline engine and a sharded delta-replaying one,
   must deliver exactly the same packets to the same instances — and
   the sharded side must never fall back to a recompile. *)
let churn_equivalence_with ~name ~classifier =
  qtest ~count:20 name
    QCheck2.Gen.(
      list_size (int_range 1 25) (pair (int_bound 5) (int_bound 3)))
    (fun script ->
      let filters =
        [|
          Rp_classifier.Filter.v4 ~proto:Proto.udp ();
          Rp_classifier.Filter.v4 ~src:(Prefix.of_string "10.0.0.0/8") ();
          Rp_classifier.Filter.v4 ~dst:(Prefix.of_string "192.168.0.0/16") ();
          Rp_classifier.Filter.v4
            ~src:(Prefix.of_string "10.0.0.0/8")
            ~dst:(Prefix.of_string "192.168.1.0/24")
            ();
        |]
      in
      let mk_side ~classifier mode =
        let r = mk_router () in
        Rp_classifier.Aiu.set_mode (Router.aiu r) classifier;
        let insts = Array.make 4 0 in
        let hits = Array.make 4 (Atomic.make 0) in
        Array.iteri
          (fun i _ ->
            let name = Printf.sprintf "churn-%d" i in
            let pm, h = counting_plugin ~gate:Gate.Firewall ~name in
            ok (Pcu.modload r.Router.pcu pm);
            let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
            insts.(i) <- inst.Plugin.instance_id;
            hits.(i) <- h)
          filters;
        let e = Engine.create mode r in
        let mbufs = Array.init 8 (fun f -> mk_pkt ~sport:(20_000 + f) ()) in
        (r, e, insts, hits, mbufs)
      in
      let inline = mk_side ~classifier:`Per_gate Inline
      and sharded = mk_side ~classifier (Sharded 2) in
      let flushes0 =
        counter_get "engine.shard0.flow_flushes"
        + counter_get "engine.shard1.flow_flushes"
      in
      let stale0 = counter_get "aiu.fix_stale" in
      let gone0 =
        counter_get "flow_table.evictions"
        + counter_get "flow_table.recycled"
        + counter_get "flow_table.expired"
      in
      (* Mirror of the script-visible control state, applied
         identically to both sides so every command is legal. *)
      let bound = Array.make 4 false and quar = Array.make 4 false in
      let apply (r, e, insts, _, mbufs) (cmd, slot) =
        let pcu = r.Router.pcu in
        let id = insts.(slot) in
        (match cmd with
         | 0 when (not quar.(slot)) && not bound.(slot) ->
           ok (Pcu.register_instance pcu ~instance:id filters.(slot))
         | 1 when (not quar.(slot)) && bound.(slot) ->
           ok (Pcu.deregister_instance pcu ~instance:id filters.(slot))
         | 2 when not quar.(slot) -> ok (Pcu.quarantine pcu id)
         | 3 when quar.(slot) -> ok (Pcu.restore pcu id)
         | 4 | 5 ->
           for f = 0 to (2 * slot) + 1 do
             assert (Engine.submit e ~now:0L mbufs.(f))
           done;
           ignore (Engine.flush e ~f:(fun _ -> ()))
         | _ -> ());
        Engine.maybe_publish e;
        wait "churn sync" (fun () -> Engine.synced e)
      in
      List.iter
        (fun ((cmd, slot) as c) ->
          apply inline c;
          apply sharded c;
          (match cmd with
           | 0 when (not quar.(slot)) && not bound.(slot) ->
             bound.(slot) <- true
           | 1 when (not quar.(slot)) && bound.(slot) -> bound.(slot) <- false
           | 2 when not quar.(slot) -> quar.(slot) <- true
           | 3 when quar.(slot) -> quar.(slot) <- false
           | _ -> ()))
        script;
      let (_, ei, _, hi, _) = inline and (_, es, _, hs, _) = sharded in
      let same =
        Array.for_all2 (fun a b -> Atomic.get a = Atomic.get b) hi hs
      in
      let flushes =
        counter_get "engine.shard0.flow_flushes"
        + counter_get "engine.shard1.flow_flushes"
        - flushes0
      in
      let stale = counter_get "aiu.fix_stale" - stale0 in
      let gone =
        counter_get "flow_table.evictions"
        + counter_get "flow_table.recycled"
        + counter_get "flow_table.expired"
        - gone0
      in
      Engine.stop ei;
      Engine.stop es;
      same && flushes = 0 && stale <= gone)

let churn_equivalence =
  churn_equivalence_with
    ~name:"sharded delta verdicts = inline verdicts (random churn)"
    ~classifier:`Per_gate

(* The sharded side resolves cold starts through the compiled
   cross-gate structure (rebuilt incrementally from the same delta
   replays) while the inline side walks per-gate DAGs: the two modes
   must be observationally identical through the whole engine. *)
let churn_equivalence_compiled =
  churn_equivalence_with
    ~name:"sharded compiled verdicts = inline per-gate verdicts (churn)"
    ~classifier:`Compiled

(* Engine-level flow maintenance (expire_flows / flush_flows) is
   observationally identical between the inline engine and sharded:4:
   under random interleavings of traffic bursts, expiry passes and
   full flushes, plugin hit counts, expiry totals and the live flow
   population all agree — the shards just partition one table. *)
let prop_flow_maintenance_equivalence =
  qtest ~count:25 "sharded:4 flow maintenance = inline (random interleavings)"
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_bound 3) (int_bound 7)))
    (fun script ->
      let mk_side tag mode =
        let r = mk_router () in
        let _inst, hits =
          bind_counting r ~gate:Gate.Firewall ~name:("maint-" ^ tag)
        in
        let e = Engine.create mode r in
        let mbufs = Array.init 16 (fun f -> mk_pkt ~sport:(30_000 + f) ()) in
        (e, hits, mbufs)
      in
      let ei, hi, mi = mk_side "i" Inline in
      let es, hs, ms = mk_side "s" (Sharded 4) in
      let flows e nshards =
        let s = ref 0 in
        for i = 0 to nshards - 1 do
          s := !s + Engine.shard_flow_count e i
        done;
        !s
      in
      let now = ref 0L in
      let good = ref true in
      (* Returns the expiry count for expire ops, -1 otherwise; both
         sides must return the same value for every op.  Maintenance
         runs only on a drained engine (the idle-only contract). *)
      let step e mbufs (cmd, arg) =
        match cmd with
        | 0 | 1 ->
          for f = 2 * arg to (2 * arg) + 1 do
            assert (Engine.submit e ~now:!now mbufs.(f))
          done;
          ignore (Engine.flush e ~f:(fun _ -> ()));
          -1
        | 2 ->
          ignore (Engine.flush e ~f:(fun _ -> ()));
          Engine.expire_flows e ~now:!now ~idle_ns:100L
        | _ ->
          ignore (Engine.flush e ~f:(fun _ -> ()));
          Engine.flush_flows e;
          -1
      in
      List.iter
        (fun c ->
          now := Int64.add !now 30L;
          let a = step ei mi c in
          let b = step es ms c in
          if a <> b then good := false;
          if flows ei 1 <> flows es 4 then good := false)
        script;
      let same_hits = Atomic.get hi = Atomic.get hs in
      Engine.stop ei;
      Engine.stop es;
      !good && same_hits)

(* Switching the classifier mode on a live engine travels to the
   shards as an ordinary publication (a bare [Refresh] delta) — after
   sync, worker-domain cold starts go through the compiled structure. *)
let test_compiled_mode_propagates () =
  let r = mk_router () in
  let _inst, hits = bind_counting r ~gate:Gate.Firewall ~name:"cmp-prop" in
  let e = Engine.create (Sharded 2) r in
  Rp_classifier.Aiu.set_mode (Router.aiu r) `Compiled;
  Engine.maybe_publish e;
  wait "mode publish" (fun () -> Engine.synced e);
  let walks0 = counter_get "aiu.compiled_walks" in
  for f = 0 to 7 do
    assert (Engine.submit e ~now:0L (mk_pkt ~sport:(26_000 + f) ()))
  done;
  ignore (Engine.flush e ~f:(fun _ -> ()));
  check bool_t "plugin saw traffic" true (Atomic.get hits > 0);
  check bool_t "shards resolved cold starts via the compiled structure" true
    (counter_get "aiu.compiled_walks" - walks0 > 0);
  (* And back: per-gate mode resumes full DAG walks. *)
  Rp_classifier.Aiu.set_mode (Router.aiu r) `Per_gate;
  Engine.maybe_publish e;
  wait "mode revert" (fun () -> Engine.synced e);
  let walks1 = counter_get "aiu.compiled_walks" in
  for f = 0 to 7 do
    assert (Engine.submit e ~now:0L (mk_pkt ~sport:(27_000 + f) ()))
  done;
  ignore (Engine.flush e ~f:(fun _ -> ()));
  check int_t "no compiled walks in per-gate mode" 0
    (counter_get "aiu.compiled_walks" - walks1);
  Engine.stop e

(* Charge parity through the one shared classify-and-charge entry point
   ([Rp_core.Classify.at]): the router's control AIU and a shard-style
   AIU rebuilt from a snapshot must charge byte-identical cycles for
   the same traffic, cold and warm, in both classifier modes — the
   regression this guards is the formerly duplicated logic in
   [Ip_core.classify_at] and the shard data path drifting apart. *)
let test_classify_charge_parity () =
  let run classifier =
    let r = mk_router () in
    let _inst, _hits = bind_counting r ~gate:Gate.Firewall ~name:"chg" in
    Rp_classifier.Aiu.set_mode (Router.aiu r) classifier;
    (* Rebuild a private AIU from the snapshot, the way Shard.compile
       does: same bindings, same mode. *)
    let snap = Snapshot.capture ~gen:0 r in
    let aiu = Rp_classifier.Aiu.create ~gates:Gate.count () in
    List.iter
      (fun (g, f, inst) -> Rp_classifier.Aiu.bind aiu ~gate:g f inst)
      snap.Snapshot.bindings;
    Rp_classifier.Aiu.set_mode aiu snap.Snapshot.classifier;
    let charge aiu m =
      let c0 = Cost.get () in
      ignore (Classify.at aiu ~now:0L ~gate:Gate.Firewall m);
      Cost.get () - c0
    in
    let m1 = mk_pkt ~sport:28_000 () and m2 = mk_pkt ~sport:28_000 () in
    let cold_r = charge (Router.aiu r) m1 in
    let cold_s = charge aiu m2 in
    check int_t "cold-start charges identical (router vs shard AIU)"
      cold_r cold_s;
    let warm_r = charge (Router.aiu r) m1 in
    let warm_s = charge aiu m2 in
    check int_t "warm (FIX) charges identical" warm_r warm_s;
    check bool_t "warm below cold" true (warm_r < cold_r);
    cold_r
  in
  let pergate = run `Per_gate in
  let compiled = run `Compiled in
  check bool_t "compiled cold start charges no more than per-gate" true
    (compiled <= pergate)

(* Backlog overflow and delta toggling both poison the chain: the next
   publication recompiles every shard, and the chain heals after. *)
let test_backlog_overflow_recompiles () =
  let r = mk_router () in
  let e = Engine.create (Sharded 1) r in
  let f0 = counter_get "engine.shard0.flow_flushes" in
  let d0 = counter_get "engine.shard0.delta_applies" in
  Engine.set_backlog e 4;
  Engine.set_coalesce e ~count:1_000 ();
  let filt i =
    Rp_classifier.Filter.v4
      ~src:(Prefix.of_string (Printf.sprintf "10.%d.0.0/16" i))
      ()
  in
  let insts =
    Array.init 6 (fun i ->
        let name = Printf.sprintf "bl-%d" i in
        let pm, _ = counting_plugin ~gate:Gate.Firewall ~name in
        ok (Pcu.modload r.Router.pcu pm);
        (ok (Pcu.create_instance r.Router.pcu ~plugin:name []))
          .Plugin.instance_id)
  in
  (* Six buffered mutations overflow the 4-entry backlog; the overflow
     forces an immediate full-recompile publication. *)
  Array.iteri
    (fun i id ->
      ok (Pcu.register_instance r.Router.pcu ~instance:id (filt i));
      Engine.maybe_publish e)
    insts;
  wait "overflow publish" (fun () -> Engine.synced e);
  check int_t "overflow forced one recompile"
    1 (counter_get "engine.shard0.flow_flushes" - f0);
  (* Mutations after the overflow flow as deltas again. *)
  Engine.set_coalesce e ~count:1 ();
  ok (Pcu.deregister_instance r.Router.pcu ~instance:insts.(0) (filt 0));
  Engine.maybe_publish e;
  wait "healed chain" (fun () -> Engine.synced e);
  check bool_t "chain healed: unbind replayed as a delta" true
    (counter_get "engine.shard0.delta_applies" - d0 >= 1);
  check int_t "no further recompile"
    1 (counter_get "engine.shard0.flow_flushes" - f0);
  (* Turning delta recording off makes every publication a recompile;
     turning it back on poisons the chain exactly once. *)
  Engine.set_deltas e false;
  ok (Pcu.deregister_instance r.Router.pcu ~instance:insts.(1) (filt 1));
  Engine.publish e;
  wait "deltas-off publish" (fun () -> Engine.synced e);
  check int_t "deltas off: recompile"
    2 (counter_get "engine.shard0.flow_flushes" - f0);
  Engine.set_deltas e true;
  ok (Pcu.deregister_instance r.Router.pcu ~instance:insts.(2) (filt 2));
  Engine.publish e;
  wait "poisoned publish" (fun () -> Engine.synced e);
  check int_t "re-enable poisons the chain once"
    3 (counter_get "engine.shard0.flow_flushes" - f0);
  let d1 = counter_get "engine.shard0.delta_applies" in
  ok (Pcu.deregister_instance r.Router.pcu ~instance:insts.(3) (filt 3));
  Engine.publish e;
  wait "delta resumed" (fun () -> Engine.synced e);
  check int_t "then deltas resume"
    3 (counter_get "engine.shard0.flow_flushes" - f0);
  check bool_t "delta applied after re-enable" true
    (counter_get "engine.shard0.delta_applies" - d1 >= 1);
  Engine.stop e

let test_coalescing () =
  let r = mk_router () in
  let e = Engine.create (Sharded 1) r in
  let coalesced0 = counter_get "engine.coalesced" in
  Engine.set_coalesce e ~count:3 ();
  let gen0 = Engine.generation e in
  let bind i =
    let name = Printf.sprintf "co-%d" i in
    let pm, _ = counting_plugin ~gate:Gate.Firewall ~name in
    ok (Pcu.modload r.Router.pcu pm);
    let inst = ok (Pcu.create_instance r.Router.pcu ~plugin:name []) in
    ok
      (Pcu.register_instance r.Router.pcu ~instance:inst.Plugin.instance_id
         (Rp_classifier.Filter.v4
            ~src:(Prefix.of_string (Printf.sprintf "10.%d.0.0/16" i))
            ()));
    Engine.maybe_publish e
  in
  bind 0;
  check int_t "first mutation deferred" gen0 (Engine.generation e);
  check int_t "one pending" 1 (Engine.pending_deltas e);
  bind 1;
  check int_t "second mutation deferred" gen0 (Engine.generation e);
  check int_t "two deferrals counted" 2
    (counter_get "engine.coalesced" - coalesced0);
  bind 2;
  check int_t "third mutation publishes the whole batch" (gen0 + 3)
    (Engine.generation e);
  check int_t "nothing pending after the batch" 0 (Engine.pending_deltas e);
  wait "batch sync" (fun () -> Engine.synced e);
  (* An elapsed wall-clock window publishes below the count threshold. *)
  Engine.set_coalesce e ~count:100 ~window_s:0.0 ();
  bind 3;
  check int_t "window expiry published" (gen0 + 4) (Engine.generation e);
  check int_t "coalesce config readable" 100 (fst (Engine.coalesce e));
  Engine.stop e

(* --- inline mode ------------------------------------------------------ *)

let test_inline_engine_matches_ip_core () =
  let r = mk_router () in
  let e = Engine.create Inline r in
  check int_t "one logical shard" 1 (Engine.shards e);
  for f = 0 to 9 do
    check bool_t "inline submit accepts" true
      (Engine.submit e ~now:0L (mk_pkt ~sport:(7000 + f) ()))
  done;
  let fwd = ref 0 in
  let n =
    Engine.drain e ~f:(fun res ->
        match res.Shard.outcome with
        | Shard.Forwarded 1 -> incr fwd
        | _ -> Alcotest.fail "inline verdict differs from ip_core")
  in
  check int_t "all results drained" 10 n;
  check int_t "all forwarded to if1" 10 !fwd;
  (* Same traffic straight through Ip_core on a fresh router agrees. *)
  let r2 = mk_router () in
  (match Ip_core.process r2 ~now:0L (mk_pkt ~sport:7000 ()) with
   | Ip_core.Enqueued 1 -> ()
   | v -> Alcotest.failf "direct path: %a" Ip_core.pp_verdict v);
  Engine.stop e

(* --- counter consistency under concurrency ---------------------------- *)

let test_counter_consistency () =
  let r = mk_router () in
  let submitted0 = counter_get "engine.submitted" in
  let drained0 = counter_get "engine.drained" in
  let rx0 = counter_get "engine.shard0.rx" + counter_get "engine.shard1.rx" in
  let e = Engine.create (Sharded 2) r in
  let accepted = ref 0 in
  for f = 0 to 199 do
    if Engine.submit e ~now:0L (mk_pkt ~sport:(8000 + f) ()) then incr accepted
  done;
  ignore (Engine.flush e ~f:(fun _ -> ()));
  let rx = counter_get "engine.shard0.rx" + counter_get "engine.shard1.rx" - rx0 in
  check int_t "sum of shard rx = accepted submissions" !accepted rx;
  check int_t "submitted counter = accepted" !accepted
    (counter_get "engine.submitted" - submitted0);
  check int_t "drained = dispatched (tx rings kept up)" !accepted
    (counter_get "engine.drained" - drained0);
  Engine.stop e

(* --- telemetry on worker domains -------------------------------------- *)

(* Workers write their own event rings and account flows in their
   domain-private tables; after stop + flush_flows, the exported flow
   records must cover every dispatched packet and the trace must be
   loadable JSON with per-gate spans. *)
let test_sharded_telemetry () =
  let r = mk_router () in
  Rp_obs.Flowlog.clear ();
  Rp_obs.Telemetry.enable ~every:1;
  let acc0 = counter_get "flow_table.accounted_packets" in
  let e = Engine.create (Sharded 2) r in
  let flows = 16 and per_flow = 5 in
  for f = 0 to flows - 1 do
    for _ = 1 to per_flow do
      while not (Engine.submit e ~now:0L (mk_pkt ~sport:(9100 + f) ())) do
        ignore (Engine.drain e ~f:(fun _ -> ()))
      done
    done
  done;
  ignore (Engine.flush e ~f:(fun _ -> ()));
  Rp_obs.Telemetry.disable ();
  Engine.stop e;
  Engine.flush_flows e;
  let records = Rp_obs.Flowlog.drain () in
  let pkts =
    List.fold_left (fun a fr -> a + fr.Rp_obs.Flowlog.packets) 0 records
  in
  check int_t "flow records cover every dispatched packet"
    (flows * per_flow) pkts;
  check int_t "and agree with the accounting counter" pkts
    (counter_get "flow_table.accounted_packets" - acc0);
  check bool_t "worker rings recorded events" true
    (Rp_obs.Telemetry.recorded () > 0);
  let json =
    Rp_obs.Telemetry.to_chrome_json ~gate_name:(fun g ->
        match Gate.of_int g with Some g -> Gate.name g | None -> "?")
      ()
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i =
      i + nl <= hl && (String.sub hay i nl = needle || at (i + 1))
    in
    at 0
  in
  check bool_t "trace has per-gate complete spans" true
    (contains ~needle:"\"name\":\"gate.ip-options\"" json
    && contains ~needle:"\"ph\":\"X\"" json);
  Rp_obs.Telemetry.clear ()

(* --- batched submit ---------------------------------------------------- *)

(* submit_batch on the inline engine must behave exactly like a
   per-packet submit loop: same acceptance, same drained results, same
   plugin invocations. *)
let test_submit_batch_inline_equiv () =
  let run ~batched =
    let r = mk_router () in
    let _, hits =
      bind_counting r ~gate:Gate.Firewall
        ~name:(if batched then "count-batched" else "count-seq")
    in
    let e = Engine.create Inline r in
    let pkts = Array.init 32 (fun f -> mk_pkt ~sport:(30_000 + f) ()) in
    let accepted =
      if batched then Engine.submit_batch e ~now:0L pkts ~n:32
      else
        Array.fold_left
          (fun acc m -> if Engine.submit e ~now:0L m then acc + 1 else acc)
          0 pkts
    in
    let drained = Engine.flush e ~f:(fun _ -> ()) in
    Engine.stop e;
    (accepted, drained, Atomic.get hits)
  in
  let seq = run ~batched:false in
  let batched = run ~batched:true in
  check
    (Alcotest.triple int_t int_t int_t)
    "batched = sequential (accepted, drained, plugin hits)" seq batched

(* Pool-backed batches through the sharded engine: every packet pulled
   from the pool must come back out of the drain and be recyclable, the
   full synth → link → engine → recycle loop of fig-batch. *)
let test_submit_batch_sharded_recycles () =
  let r = mk_router () in
  let e = Engine.create (Sharded 2) r in
  let pool = Pool.create ~buf_size:0 ~capacity:64 () in
  let total = 256 and batch = 16 in
  let scratch = Array.make batch (mk_pkt ()) in
  let recycled = ref 0 in
  let recycle res = Pool.free pool res.Rp_engine.Shard.m; incr recycled in
  let sent = ref 0 in
  while !sent < total do
    let n = ref 0 in
    while !n < batch && !sent + !n < total && Pool.available pool > 0 do
      let id = !sent + !n in
      let key =
        Flow_key.make ~src:(Ipaddr.v4 10 0 0 1)
          ~dst:(Ipaddr.v4 192 168 1 (1 + (id mod 8)))
          ~proto:Proto.udp ~sport:(50_000 + (id mod 32)) ~dport:9000 ~iface:0
      in
      scratch.(!n) <- Pool.alloc pool ~key ~len:64;
      incr n
    done;
    (* The pool (64) bounds in-flight packets well below the RX rings
       (1024/shard), so the engine must accept every batch whole. *)
    let accepted = Engine.submit_batch e ~now:0L scratch ~n:!n in
    check int_t "batch accepted whole" !n accepted;
    sent := !sent + accepted;
    ignore (Engine.drain e ~f:recycle)
  done;
  ignore (Engine.flush e ~f:recycle);
  Engine.stop e;
  ignore (Engine.drain e ~f:recycle);
  check int_t "every accepted packet drained and recycled" total !recycled;
  check int_t "pool made whole" 64 (Pool.available pool);
  let s = Pool.stats pool in
  check int_t "no double frees" 0 s.Pool.double_frees;
  check int_t "no foreign frees" 0 s.Pool.foreign_frees

let () =
  Alcotest.run "engine"
    [
      ( "spsc",
        [
          Alcotest.test_case "capacity and backpressure" `Quick
            test_spsc_capacity;
          spsc_fifo;
          spsc_pop_batch;
          spsc_concurrent;
          spsc_concurrent_batched;
        ] );
      ( "sharding",
        [
          shard_stability;
          Alcotest.test_case "flows stay on owning shard" `Quick
            test_flows_stay_on_owning_shard;
          Alcotest.test_case "counter consistency" `Quick
            test_counter_consistency;
          Alcotest.test_case "worker telemetry and flow export" `Quick
            test_sharded_telemetry;
        ] );
      ( "publication",
        [
          Alcotest.test_case "unbind stops classification" `Quick
            test_unbind_stops_classification;
          Alcotest.test_case "quarantine while draining" `Quick
            test_quarantine_while_draining;
        ] );
      ( "churn",
        [
          Alcotest.test_case "selective invalidation keeps fast path" `Quick
            test_selective_invalidation_keeps_fast_path;
          churn_equivalence;
          prop_flow_maintenance_equivalence;
          Alcotest.test_case "backlog overflow recompiles" `Quick
            test_backlog_overflow_recompiles;
          Alcotest.test_case "coalescing" `Quick test_coalescing;
        ] );
      ( "compiled",
        [
          churn_equivalence_compiled;
          Alcotest.test_case "mode propagates to shards" `Quick
            test_compiled_mode_propagates;
          Alcotest.test_case "classify charge parity" `Quick
            test_classify_charge_parity;
        ] );
      ( "inline",
        [
          Alcotest.test_case "inline engine matches ip_core" `Quick
            test_inline_engine_matches_ip_core;
        ] );
      ( "batched",
        [
          Alcotest.test_case "inline submit_batch = submit loop" `Quick
            test_submit_batch_inline_equiv;
          Alcotest.test_case "sharded batches recycle through the pool" `Quick
            test_submit_batch_sharded_recycles;
        ] );
    ]
