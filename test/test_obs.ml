(* Tests for rp_obs: counters (wraparound), histograms (bucketing),
   the registry (determinism, JSON validity), trace spans, and the
   integration of the data-path instrumentation with the oracle
   statistics the flow table and IP core keep themselves. *)

open Rp_pkt
open Rp_obs

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* --- Counter --------------------------------------------------------- *)

let test_counter_basics () =
  let c = Counter.make "t.basics" in
  check int_t "starts at zero" 0 (Counter.get c);
  Counter.inc c;
  Counter.inc c;
  Counter.add c 40;
  check int_t "inc + add" 42 (Counter.get c);
  check string_t "name" "t.basics" (Counter.name c);
  Counter.reset c;
  check int_t "reset" 0 (Counter.get c)

let test_counter_overflow () =
  (* Documented semantics: plain int arithmetic, so the counter wraps
     to [min_int] rather than raising or saturating. *)
  let c = Counter.make "t.overflow" in
  Counter.add c max_int;
  Counter.inc c;
  check bool_t "wraps to min_int" true (Counter.get c = min_int);
  Counter.inc c;
  check bool_t "keeps counting" true (Counter.get c = min_int + 1)

let test_counter_concurrent () =
  (* The sharded engine's requirement: increments from concurrent
     domains are never lost. *)
  let c = Counter.make "t.concurrent" in
  let per_domain = 100_000 in
  let bump () =
    for _ = 1 to per_domain do
      Counter.inc c
    done
  in
  let d1 = Domain.spawn bump and d2 = Domain.spawn bump in
  bump ();
  Domain.join d1;
  Domain.join d2;
  check int_t "no increment lost across 3 domains" (3 * per_domain)
    (Counter.get c)

(* The reset/read race fix: [swap] drains stripes with atomic
   exchanges, so increments racing with a concurrent reset are either
   returned by some swap or still in the counter — never lost. *)
let test_counter_swap_conserves =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:5
       ~name:"swap conserves increments racing with reset"
       QCheck2.Gen.(int_range 1_000 30_000)
       (fun per_domain ->
         let c = Counter.make "t.swap" in
         let stop = Atomic.make false in
         let swapped = Atomic.make 0 in
         let swapper =
           Domain.spawn (fun () ->
               while not (Atomic.get stop) do
                 let n = Counter.swap c in
                 ignore (Atomic.fetch_and_add swapped n)
               done)
         in
         let bump () =
           for _ = 1 to per_domain do
             Counter.inc c
           done
         in
         let d1 = Domain.spawn bump and d2 = Domain.spawn bump in
         bump ();
         Domain.join d1;
         Domain.join d2;
         Atomic.set stop true;
         Domain.join swapper;
         Atomic.get swapped + Counter.swap c = 3 * per_domain))

(* --- Histogram ------------------------------------------------------- *)

let test_histogram_bucketing () =
  let h = Histogram.make "t.hist" ~bounds:[| 10; 20; 30 |] in
  (* One value per region: <=10, <=20, <=30, and overflow. *)
  List.iter (Histogram.observe h) [ 5; 10; 11; 20; 30; 31; 1000 ];
  check int_t "total" 7 (Histogram.total h);
  check int_t "sum" (5 + 10 + 11 + 20 + 30 + 31 + 1000) (Histogram.sum h);
  let counts = Histogram.counts h in
  check int_t "bucket le=10" 2 counts.(0);
  check int_t "bucket le=20" 2 counts.(1);
  check int_t "bucket le=30" 1 counts.(2);
  check int_t "overflow bucket" 2 counts.(3);
  Histogram.reset h;
  check int_t "reset total" 0 (Histogram.total h);
  check int_t "reset sum" 0 (Histogram.sum h)

let float_t = Alcotest.float 1e-9

let test_histogram_quantile_uniform () =
  (* 1..100 over equal-width buckets: linear interpolation within the
     containing bucket recovers the exact percentile. *)
  let h = Histogram.make "t.q.uniform" ~bounds:[| 25; 50; 75; 100 |] in
  for v = 1 to 100 do
    Histogram.observe h v
  done;
  let q p = Histogram.quantile h p in
  check float_t "p50" 50.0 (q 0.50);
  check float_t "p90" 90.0 (q 0.90);
  check float_t "p99" 99.0 (q 0.99);
  check float_t "p0 is the first bucket's floor" 0.0 (q 0.0);
  check float_t "p100" 100.0 (q 1.0);
  check float_t "q clamped above 1" 100.0 (q 7.0);
  check float_t "q clamped below 0" 0.0 (q (-1.0))

let test_histogram_quantile_edges () =
  let h = Histogram.make "t.q.single" ~bounds:[| 100 |] in
  check float_t "empty histogram" 0.0 (Histogram.quantile h 0.5);
  for _ = 1 to 10 do
    Histogram.observe h 40
  done;
  check float_t "single bucket interpolates over [0, bound]" 50.0
    (Histogram.quantile h 0.5);
  let o = Histogram.make "t.q.over" ~bounds:[| 10 |] in
  for _ = 1 to 4 do
    Histogram.observe o 20
  done;
  check float_t "overflow bucket pins to the last finite bound" 10.0
    (Histogram.quantile o 0.5);
  (* Skewed distribution: quantile lands in the right bucket. *)
  let s = Histogram.make "t.q.skew" ~bounds:[| 10; 20; 40 |] in
  for _ = 1 to 90 do
    Histogram.observe s 5
  done;
  for _ = 1 to 10 do
    Histogram.observe s 30
  done;
  (* p50: target 50 of 90 in [0,10] -> 10 * 50/90. *)
  check float_t "p50 in the heavy bucket" (10.0 *. 50.0 /. 90.0)
    (Histogram.quantile s 0.50);
  (* p95: target 95, 5 of the 10 in (20,40] -> 20 + 20 * 5/10. *)
  check float_t "p95 in the tail bucket" 30.0 (Histogram.quantile s 0.95)

let test_histogram_quantile_degenerate () =
  (* A single observation: every quantile lands in its bucket, and the
     rank interpolates across that bucket's full value range. *)
  let h = Histogram.make "t.q.one" ~bounds:[| 25; 50; 75 |] in
  Histogram.observe h 40;
  check float_t "q0 of one obs is the bucket's lower edge" 25.0
    (Histogram.quantile h 0.0);
  check float_t "q0.5 of one obs is the bucket midpoint" 37.5
    (Histogram.quantile h 0.5);
  check float_t "q1 of one obs is the bucket's upper bound" 50.0
    (Histogram.quantile h 1.0);
  (* First bucket empty: q=0 reports the first non-empty bucket's
     lower edge, not 0. *)
  let g = Histogram.make "t.q.gap" ~bounds:[| 25; 50; 75 |] in
  for _ = 1 to 5 do
    Histogram.observe g 60
  done;
  check float_t "q0 skips empty leading buckets" 50.0
    (Histogram.quantile g 0.0);
  check float_t "q1 is the last non-empty finite bound" 75.0
    (Histogram.quantile g 1.0);
  (* All mass in overflow: every quantile (even 0) pins to the last
     finite bound — a conservative lower bound on the true value. *)
  let o = Histogram.make "t.q.allover" ~bounds:[| 10; 20 |] in
  for _ = 1 to 3 do
    Histogram.observe o 99
  done;
  check float_t "q0 with overflow-only mass" 20.0 (Histogram.quantile o 0.0);
  check float_t "q1 with overflow-only mass" 20.0 (Histogram.quantile o 1.0);
  (* Empty histogram: every quantile is 0 regardless of q. *)
  let e = Histogram.make "t.q.empty2" ~bounds:[| 10 |] in
  check float_t "empty at q0" 0.0 (Histogram.quantile e 0.0);
  check float_t "empty at q1" 0.0 (Histogram.quantile e 1.0)

let test_histogram_bad_bounds () =
  let raises bounds =
    match Histogram.make "t.bad" ~bounds with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool_t "empty bounds" true (raises [||]);
  check bool_t "non-increasing" true (raises [| 10; 10 |]);
  check bool_t "decreasing" true (raises [| 20; 10 |])

(* --- Registry -------------------------------------------------------- *)

let test_registry_get_or_create () =
  let a = Registry.counter "t.reg.same" in
  let b = Registry.counter "t.reg.same" in
  check bool_t "same counter object" true (a == b);
  Counter.inc a;
  check int_t "shared state" 1 (Counter.get b);
  (match Registry.histogram "t.reg.same" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch should raise");
  Registry.remove "t.reg.same"

let test_registry_gauge_replace () =
  Registry.gauge "t.reg.g" (fun () -> 1.0);
  Registry.gauge "t.reg.g" (fun () -> 2.0);
  (match Registry.find "t.reg.g" with
   | Some (Registry.Gauge g) ->
     check bool_t "latest registration wins" true (Gauge.read g = 2.0)
   | _ -> Alcotest.fail "gauge not found");
  Registry.remove "t.reg.g"

let test_registry_dump_deterministic () =
  (* Register in shuffled order: dumps sort by name, so two snapshots
     of equal state are byte-equal regardless of insertion order. *)
  List.iter
    (fun n -> Counter.add (Registry.counter ("t.det." ^ n)) 7)
    [ "zeta"; "alpha"; "mid" ];
  Registry.set "t.det.gauge" 1.5;
  let d1 = Registry.dump ~pattern:"t.det." () in
  let d2 = Registry.dump ~pattern:"t.det." () in
  check string_t "byte-equal dumps" d1 d2;
  check string_t "sorted, one per line"
    "t.det.alpha 7\nt.det.gauge 1.5\nt.det.mid 7\nt.det.zeta 7\n" d1;
  let j1 = Registry.dump_json ~pattern:"t.det." () in
  let j2 = Registry.dump_json ~pattern:"t.det." () in
  check string_t "byte-equal JSON" j1 j2;
  List.iter Registry.remove (Registry.names ~pattern:"t.det." ())

let test_registry_reset () =
  let c = Registry.counter "t.rst.c" in
  let h = Registry.histogram "t.rst.h" in
  Counter.add c 5;
  Histogram.observe h 123;
  Registry.set "t.rst.g" 9.0;
  Registry.reset ();
  check int_t "counter cleared" 0 (Counter.get c);
  check int_t "histogram cleared" 0 (Histogram.total h);
  (match Registry.find "t.rst.g" with
   | Some (Registry.Gauge g) ->
     check bool_t "gauge untouched" true (Gauge.read g = 9.0)
   | _ -> Alcotest.fail "gauge lost");
  List.iter Registry.remove [ "t.rst.c"; "t.rst.h"; "t.rst.g" ]

(* A minimal JSON syntax checker, enough to validate the emitters'
   output without an external parser: objects, arrays, strings, and
   numbers. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t')
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else failwith "unexpected char"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> failwith "bad value"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems ()
        | Some ']' -> incr pos
        | _ -> failwith "bad array"
      in
      elems ()
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> failwith "bad object"
      in
      members ()
    end
  and string () =
    expect '"';
    while peek () <> Some '"' && !pos < n do
      incr pos
    done;
    expect '"'
  and number () =
    if peek () = Some '-' then incr pos;
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '.' | 'e' | '-' | '+' -> true
          | _ -> false)
    do
      incr pos
    done;
    if !pos = start then failwith "bad number"
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | b -> b
  | exception Failure _ -> false

let test_registry_json_valid () =
  (* The full registry, data-path metrics and all. *)
  check bool_t "syntax checker accepts emitter output" true
    (json_valid (Registry.dump_json ()));
  check bool_t "filtered dump also valid" true
    (json_valid (Registry.dump_json ~pattern:"flow_table" ()));
  (* Sanity: the checker itself rejects garbage. *)
  check bool_t "checker rejects garbage" false (json_valid "{\"a\": }")

(* --- Trace ----------------------------------------------------------- *)

let test_trace_ring () =
  Trace.clear ();
  Trace.record ~name:"off" ~cycles:1 ~accesses:1;
  check int_t "disabled records nothing" 0 (Trace.recorded ());
  Trace.enabled := true;
  Trace.set_capacity 4;
  for i = 1 to 6 do
    Trace.record ~name:("s" ^ string_of_int i) ~cycles:i ~accesses:0
  done;
  Trace.enabled := false;
  let spans = Trace.spans () in
  check int_t "capacity bounds the buffer" 4 (List.length spans);
  check bool_t "oldest first, newest kept" true
    (List.map (fun s -> s.Trace.name) spans = [ "s3"; "s4"; "s5"; "s6" ]);
  check bool_t "seq increases" true
    (let seqs = List.map (fun s -> s.Trace.seq) spans in
     seqs = List.sort compare seqs);
  Trace.clear ();
  check int_t "clear" 0 (Trace.recorded ())

(* --- Telemetry (event rings) ----------------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let test_telemetry_sampling () =
  Telemetry.enable ~every:3;
  check bool_t "on" true (Telemetry.on ());
  check int_t "period" 3 (Telemetry.sample_every ());
  let ids = List.init 9 (fun _ -> Telemetry.sample ()) in
  let sampled = List.filter (fun i -> i <> 0) ids in
  check int_t "1-in-3 samples 3 of 9" 3 (List.length sampled);
  check bool_t "ids positive and distinct" true
    (List.for_all (fun i -> i > 0) sampled
    && List.sort_uniq compare sampled = List.sort compare sampled);
  Telemetry.disable ();
  check bool_t "off" false (Telemetry.on ());
  check int_t "off samples nothing" 0 (Telemetry.sample ())

let test_telemetry_ring_overwrite () =
  Telemetry.set_capacity 4;
  Telemetry.enable ~every:1;
  for i = 1 to 6 do
    Telemetry.record ~ts:(100 + i) ~kind:Telemetry.Classify ~gate:0 ~pkt:i
      ~arg:0
  done;
  let evs = Telemetry.events () in
  check int_t "capacity bounds the ring" 4 (List.length evs);
  check bool_t "overwrite-oldest keeps the newest, in order" true
    (List.map (fun e -> e.Telemetry.pkt) evs = [ 3; 4; 5; 6 ]);
  check int_t "recorded counts everything" 6 (Telemetry.recorded ());
  check int_t "overwritten counted" 2 (Telemetry.overwritten ());
  Telemetry.disable ();
  Telemetry.set_capacity 4096

let test_telemetry_chrome_json () =
  Telemetry.enable ~every:1;
  check bool_t "empty dump is valid JSON" true
    (json_valid (Telemetry.to_chrome_json ()));
  let pkt = Telemetry.sample () in
  Telemetry.record ~ts:100 ~kind:Telemetry.Pkt_start ~gate:(-1) ~pkt ~arg:64;
  Telemetry.record ~ts:110 ~kind:Telemetry.Gate_enter ~gate:2 ~pkt ~arg:0;
  Telemetry.record ~ts:150 ~kind:Telemetry.Classify ~gate:2 ~pkt ~arg:7;
  Telemetry.record ~ts:180 ~kind:Telemetry.Gate_exit ~gate:2 ~pkt ~arg:7;
  Telemetry.record ~ts:300 ~kind:Telemetry.Pkt_end ~gate:(-1) ~pkt ~arg:0;
  let json = Telemetry.to_chrome_json ~gate_name:(fun _ -> "firewall") () in
  Telemetry.disable ();
  check bool_t "dump is valid JSON" true (json_valid json);
  check bool_t "has a traceEvents array" true
    (contains ~needle:"\"traceEvents\":[" json);
  check bool_t "gate span is a complete event" true
    (contains ~needle:"\"name\":\"gate.firewall\",\"cat\":\"gate\",\"ph\":\"X\""
       json);
  check bool_t "packet span is a complete event" true
    (contains ~needle:"\"name\":\"packet\",\"cat\":\"packet\",\"ph\":\"X\"" json);
  check bool_t "classify is an instant event" true
    (contains ~needle:"\"name\":\"classify\",\"cat\":\"classify\",\"ph\":\"i\""
       json);
  Telemetry.clear ()

(* --- Flowlog (NetFlow-style export ring) ------------------------------ *)

let mk_flow_rec ?(packets = 5) ?(bytes = 500) i =
  {
    Flowlog.src = Printf.sprintf "10.0.0.%d" i;
    dst = "192.168.1.1";
    proto = 17;
    sport = 1000 + i;
    dport = 53;
    iface = 0;
    packets;
    bytes;
    forwarded = packets;
    dropped = 0;
    absorbed = 0;
    created_ns = 0L;
    last_ns = 1_000_000L;
    bindings = [ ("firewall", 1) ];
    reason = "expired";
    translated = None;
  }

let test_flowlog_ring () =
  Flowlog.set_capacity 2;
  List.iter Flowlog.emit [ mk_flow_rec 1; mk_flow_rec 2; mk_flow_rec 3 ];
  let got = Flowlog.peek () in
  check int_t "capacity bounds the ring" 2 (List.length got);
  check bool_t "overwrite-oldest keeps the newest, in order" true
    (List.map (fun r -> r.Flowlog.sport) got = [ 1002; 1003 ]);
  check int_t "peek leaves records buffered" 2 (List.length (Flowlog.peek ()));
  check int_t "drain empties the ring" 2 (List.length (Flowlog.drain ()));
  check int_t "empty after drain" 0 (List.length (Flowlog.peek ()));
  Flowlog.set_capacity 4096

let test_flowlog_json () =
  let r = mk_flow_rec 1 in
  check bool_t "JSON line is valid" true (json_valid (Flowlog.to_json_line r));
  check bool_t "JSON line carries the 5-tuple and bindings" true
    (contains ~needle:"\"src\":\"10.0.0.1\"" (Flowlog.to_json_line r)
    && contains ~needle:"{\"gate\":\"firewall\",\"instance\":1}"
         (Flowlog.to_json_line r));
  check string_t "display key" "10.0.0.1:1001 -> 192.168.1.1:53 proto=17 if=0"
    (Flowlog.key_string r);
  check bool_t "duration" true (Flowlog.duration_ns r = 1_000_000L)

(* --- Registry schema -------------------------------------------------- *)

let test_schema_version () =
  check int_t "schema_version is 3" 3 Registry.schema_version;
  let j = Registry.dump_json () in
  check bool_t "schema string in step" true
    (contains ~needle:"\"schema\": \"rp-metrics/3\"" j);
  check bool_t "schema_version field present" true
    (contains ~needle:"\"schema_version\": 3" j);
  (* v2 added quantiles to histogram objects; v3 adds the p999 tail
     (the telemetry packet-latency histogram is always registered). *)
  check bool_t "histograms carry p50/p90/p99" true
    (contains ~needle:"\"p99\":" j);
  check bool_t "histograms carry p999" true (contains ~needle:"\"p999\":" j)

(* --- Integration: flow records reconcile with gate counters ----------- *)

let test_flow_records_reconcile () =
  let open Rp_core in
  Flowlog.clear ();
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~mode:Router.Plugins ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let acc_p0 = Counter.get (Registry.counter "flow_table.accounted_packets") in
  let acc_b0 = Counter.get (Registry.counter "flow_table.accounted_bytes") in
  let d0 = Counter.get (Gate.dispatch Gate.Ip_options) in
  let key i =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 i) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:(1000 + i) ~dport:9000 ~iface:0
  in
  for i = 1 to 3 do
    for _ = 1 to 20 do
      match Ip_core.process r ~now:0L (Mbuf.synth ~key:(key i) ~len:200 ()) with
      | Ip_core.Enqueued out ->
        ignore (Iface.dequeue (Router.iface r out) ~now:0L)
      | v ->
        Alcotest.failf "unexpected verdict: %s"
          (Format.asprintf "%a" Ip_core.pp_verdict v)
    done
  done;
  (* Evict everything through the exporter. *)
  Rp_classifier.Aiu.flush_flows (Router.aiu r);
  let records = Flowlog.drain () in
  check int_t "one record per flow" 3 (List.length records);
  let pkts =
    List.fold_left (fun a fr -> a + fr.Flowlog.packets) 0 records
  in
  let bytes = List.fold_left (fun a fr -> a + fr.Flowlog.bytes) 0 records in
  check int_t "record packets = packets processed" 60 pkts;
  check int_t "record bytes = bytes processed" (60 * 200) bytes;
  check int_t "record packets = accounting counter" pkts
    (Counter.get (Registry.counter "flow_table.accounted_packets") - acc_p0);
  check int_t "record bytes = accounting counter" bytes
    (Counter.get (Registry.counter "flow_table.accounted_bytes") - acc_b0);
  check int_t "record packets = ip-options dispatches" pkts
    (Counter.get (Gate.dispatch Gate.Ip_options) - d0);
  check bool_t "records carry the flush reason" true
    (List.for_all (fun fr -> fr.Flowlog.reason = "flushed") records)

(* --- Integration: flow-table counters vs oracle stats ---------------- *)

let mk_key i =
  Flow_key.make
    ~src:(Ipaddr.v4 10 0 (i lsr 8) (i land 0xFF))
    ~dst:(Ipaddr.v4 10 1 0 1) ~proto:Proto.udp ~sport:(1000 + i) ~dport:53
    ~iface:0

let test_flow_table_counters_match_oracle () =
  let module Ft = Rp_classifier.Flow_table in
  let snap () =
    List.map
      (fun n -> Counter.get (Registry.counter ("flow_table." ^ n)))
      [ "lookups"; "hits"; "misses"; "inserts"; "recycled" ]
  in
  let before = snap () in
  (* Same shape as the classifier oracle tests: misses, inserts, hits,
     and a recycle once the fixed-size table is full. *)
  let t = Ft.create ~buckets:16 ~initial_records:4 ~max_records:4 ~gates:1 () in
  for i = 0 to 4 do
    ignore (Ft.lookup t (mk_key i) ~now:(Int64.of_int i));
    ignore (Ft.insert t (mk_key i) ~now:(Int64.of_int i))
  done;
  for i = 1 to 4 do
    ignore (Ft.lookup t (mk_key i) ~now:10L)
  done;
  let s = Ft.stats t in
  let deltas = List.map2 (fun a b -> a - b) (snap ()) before in
  check int_t "oracle lookups" s.Ft.lookups (List.nth deltas 0);
  check int_t "oracle hits" s.Ft.hits (List.nth deltas 1);
  check int_t "oracle misses" s.Ft.misses (List.nth deltas 2);
  check int_t "inserts" 5 (List.nth deltas 3);
  check int_t "oracle recycled" s.Ft.recycled (List.nth deltas 4);
  check int_t "recycled once" 1 s.Ft.recycled

(* --- Integration: gate dispatch counters over the data path ---------- *)

let test_gate_dispatch_counters () =
  let open Rp_core in
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~mode:Router.Plugins ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:1 ~dport:9 ~iface:0
  in
  let d_before = Counter.get (Gate.dispatch Gate.Firewall) in
  let p_before = Counter.get (Registry.counter "ip_core.packets") in
  let f_before = Counter.get (Registry.counter "ip_core.forwarded") in
  for _ = 1 to 10 do
    match Ip_core.process r ~now:0L (Mbuf.synth ~key ~len:100 ()) with
    | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
    | v -> Alcotest.failf "unexpected verdict: %s" (Format.asprintf "%a" Ip_core.pp_verdict v)
  done;
  check int_t "one firewall dispatch per packet" 10
    (Counter.get (Gate.dispatch Gate.Firewall) - d_before);
  check int_t "ip_core.packets" 10
    (Counter.get (Registry.counter "ip_core.packets") - p_before);
  check int_t "ip_core.forwarded" 10
    (Counter.get (Registry.counter "ip_core.forwarded") - f_before)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "overflow wraps" `Quick test_counter_overflow;
          Alcotest.test_case "concurrent domains" `Quick
            test_counter_concurrent;
          test_counter_swap_conserves;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "quantile: uniform distribution" `Quick
            test_histogram_quantile_uniform;
          Alcotest.test_case "quantile: edge cases" `Quick
            test_histogram_quantile_edges;
          Alcotest.test_case "quantile: degenerate shapes" `Quick
            test_histogram_quantile_degenerate;
          Alcotest.test_case "bad bounds" `Quick test_histogram_bad_bounds;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_registry_get_or_create;
          Alcotest.test_case "gauge replace" `Quick test_registry_gauge_replace;
          Alcotest.test_case "deterministic dump" `Quick
            test_registry_dump_deterministic;
          Alcotest.test_case "reset" `Quick test_registry_reset;
          Alcotest.test_case "json validity" `Quick test_registry_json_valid;
          Alcotest.test_case "schema version" `Quick test_schema_version;
        ] );
      ( "trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ] );
      ( "telemetry",
        [
          Alcotest.test_case "sampling gate" `Quick test_telemetry_sampling;
          Alcotest.test_case "ring overwrite" `Quick
            test_telemetry_ring_overwrite;
          Alcotest.test_case "chrome trace json" `Quick
            test_telemetry_chrome_json;
        ] );
      ( "flowlog",
        [
          Alcotest.test_case "export ring" `Quick test_flowlog_ring;
          Alcotest.test_case "json lines" `Quick test_flowlog_json;
        ] );
      ( "integration",
        [
          Alcotest.test_case "flow records reconcile" `Quick
            test_flow_records_reconcile;
          Alcotest.test_case "flow-table counters vs oracle" `Quick
            test_flow_table_counters_match_oracle;
          Alcotest.test_case "gate dispatch counters" `Quick
            test_gate_dispatch_counters;
        ] );
    ]
