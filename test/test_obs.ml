(* Tests for rp_obs: counters (wraparound), histograms (bucketing),
   the registry (determinism, JSON validity), trace spans, and the
   integration of the data-path instrumentation with the oracle
   statistics the flow table and IP core keep themselves. *)

open Rp_pkt
open Rp_obs

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* --- Counter --------------------------------------------------------- *)

let test_counter_basics () =
  let c = Counter.make "t.basics" in
  check int_t "starts at zero" 0 (Counter.get c);
  Counter.inc c;
  Counter.inc c;
  Counter.add c 40;
  check int_t "inc + add" 42 (Counter.get c);
  check string_t "name" "t.basics" (Counter.name c);
  Counter.reset c;
  check int_t "reset" 0 (Counter.get c)

let test_counter_overflow () =
  (* Documented semantics: plain int arithmetic, so the counter wraps
     to [min_int] rather than raising or saturating. *)
  let c = Counter.make "t.overflow" in
  Counter.add c max_int;
  Counter.inc c;
  check bool_t "wraps to min_int" true (Counter.get c = min_int);
  Counter.inc c;
  check bool_t "keeps counting" true (Counter.get c = min_int + 1)

let test_counter_concurrent () =
  (* The sharded engine's requirement: increments from concurrent
     domains are never lost. *)
  let c = Counter.make "t.concurrent" in
  let per_domain = 100_000 in
  let bump () =
    for _ = 1 to per_domain do
      Counter.inc c
    done
  in
  let d1 = Domain.spawn bump and d2 = Domain.spawn bump in
  bump ();
  Domain.join d1;
  Domain.join d2;
  check int_t "no increment lost across 3 domains" (3 * per_domain)
    (Counter.get c)

(* --- Histogram ------------------------------------------------------- *)

let test_histogram_bucketing () =
  let h = Histogram.make "t.hist" ~bounds:[| 10; 20; 30 |] in
  (* One value per region: <=10, <=20, <=30, and overflow. *)
  List.iter (Histogram.observe h) [ 5; 10; 11; 20; 30; 31; 1000 ];
  check int_t "total" 7 (Histogram.total h);
  check int_t "sum" (5 + 10 + 11 + 20 + 30 + 31 + 1000) (Histogram.sum h);
  let counts = Histogram.counts h in
  check int_t "bucket le=10" 2 counts.(0);
  check int_t "bucket le=20" 2 counts.(1);
  check int_t "bucket le=30" 1 counts.(2);
  check int_t "overflow bucket" 2 counts.(3);
  Histogram.reset h;
  check int_t "reset total" 0 (Histogram.total h);
  check int_t "reset sum" 0 (Histogram.sum h)

let test_histogram_bad_bounds () =
  let raises bounds =
    match Histogram.make "t.bad" ~bounds with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool_t "empty bounds" true (raises [||]);
  check bool_t "non-increasing" true (raises [| 10; 10 |]);
  check bool_t "decreasing" true (raises [| 20; 10 |])

(* --- Registry -------------------------------------------------------- *)

let test_registry_get_or_create () =
  let a = Registry.counter "t.reg.same" in
  let b = Registry.counter "t.reg.same" in
  check bool_t "same counter object" true (a == b);
  Counter.inc a;
  check int_t "shared state" 1 (Counter.get b);
  (match Registry.histogram "t.reg.same" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch should raise");
  Registry.remove "t.reg.same"

let test_registry_gauge_replace () =
  Registry.gauge "t.reg.g" (fun () -> 1.0);
  Registry.gauge "t.reg.g" (fun () -> 2.0);
  (match Registry.find "t.reg.g" with
   | Some (Registry.Gauge g) ->
     check bool_t "latest registration wins" true (Gauge.read g = 2.0)
   | _ -> Alcotest.fail "gauge not found");
  Registry.remove "t.reg.g"

let test_registry_dump_deterministic () =
  (* Register in shuffled order: dumps sort by name, so two snapshots
     of equal state are byte-equal regardless of insertion order. *)
  List.iter
    (fun n -> Counter.add (Registry.counter ("t.det." ^ n)) 7)
    [ "zeta"; "alpha"; "mid" ];
  Registry.set "t.det.gauge" 1.5;
  let d1 = Registry.dump ~pattern:"t.det." () in
  let d2 = Registry.dump ~pattern:"t.det." () in
  check string_t "byte-equal dumps" d1 d2;
  check string_t "sorted, one per line"
    "t.det.alpha 7\nt.det.gauge 1.5\nt.det.mid 7\nt.det.zeta 7\n" d1;
  let j1 = Registry.dump_json ~pattern:"t.det." () in
  let j2 = Registry.dump_json ~pattern:"t.det." () in
  check string_t "byte-equal JSON" j1 j2;
  List.iter Registry.remove (Registry.names ~pattern:"t.det." ())

let test_registry_reset () =
  let c = Registry.counter "t.rst.c" in
  let h = Registry.histogram "t.rst.h" in
  Counter.add c 5;
  Histogram.observe h 123;
  Registry.set "t.rst.g" 9.0;
  Registry.reset ();
  check int_t "counter cleared" 0 (Counter.get c);
  check int_t "histogram cleared" 0 (Histogram.total h);
  (match Registry.find "t.rst.g" with
   | Some (Registry.Gauge g) ->
     check bool_t "gauge untouched" true (Gauge.read g = 9.0)
   | _ -> Alcotest.fail "gauge lost");
  List.iter Registry.remove [ "t.rst.c"; "t.rst.h"; "t.rst.g" ]

(* A minimal JSON syntax checker, enough to validate the emitter's
   output without an external parser: objects, strings, and numbers. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t')
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else failwith "unexpected char"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '"' -> string ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> failwith "bad value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> failwith "bad object"
      in
      members ()
    end
  and string () =
    expect '"';
    while peek () <> Some '"' && !pos < n do
      incr pos
    done;
    expect '"'
  and number () =
    if peek () = Some '-' then incr pos;
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '.' | 'e' | '-' | '+' -> true
          | _ -> false)
    do
      incr pos
    done;
    if !pos = start then failwith "bad number"
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | b -> b
  | exception Failure _ -> false

let test_registry_json_valid () =
  (* The full registry, data-path metrics and all. *)
  check bool_t "syntax checker accepts emitter output" true
    (json_valid (Registry.dump_json ()));
  check bool_t "filtered dump also valid" true
    (json_valid (Registry.dump_json ~pattern:"flow_table" ()));
  (* Sanity: the checker itself rejects garbage. *)
  check bool_t "checker rejects garbage" false (json_valid "{\"a\": }")

(* --- Trace ----------------------------------------------------------- *)

let test_trace_ring () =
  Trace.clear ();
  Trace.record ~name:"off" ~cycles:1 ~accesses:1;
  check int_t "disabled records nothing" 0 (Trace.recorded ());
  Trace.enabled := true;
  Trace.set_capacity 4;
  for i = 1 to 6 do
    Trace.record ~name:("s" ^ string_of_int i) ~cycles:i ~accesses:0
  done;
  Trace.enabled := false;
  let spans = Trace.spans () in
  check int_t "capacity bounds the buffer" 4 (List.length spans);
  check bool_t "oldest first, newest kept" true
    (List.map (fun s -> s.Trace.name) spans = [ "s3"; "s4"; "s5"; "s6" ]);
  check bool_t "seq increases" true
    (let seqs = List.map (fun s -> s.Trace.seq) spans in
     seqs = List.sort compare seqs);
  Trace.clear ();
  check int_t "clear" 0 (Trace.recorded ())

(* --- Integration: flow-table counters vs oracle stats ---------------- *)

let mk_key i =
  Flow_key.make
    ~src:(Ipaddr.v4 10 0 (i lsr 8) (i land 0xFF))
    ~dst:(Ipaddr.v4 10 1 0 1) ~proto:Proto.udp ~sport:(1000 + i) ~dport:53
    ~iface:0

let test_flow_table_counters_match_oracle () =
  let module Ft = Rp_classifier.Flow_table in
  let snap () =
    List.map
      (fun n -> Counter.get (Registry.counter ("flow_table." ^ n)))
      [ "lookups"; "hits"; "misses"; "inserts"; "recycled" ]
  in
  let before = snap () in
  (* Same shape as the classifier oracle tests: misses, inserts, hits,
     and a recycle once the fixed-size table is full. *)
  let t = Ft.create ~buckets:16 ~initial_records:4 ~max_records:4 ~gates:1 () in
  for i = 0 to 4 do
    ignore (Ft.lookup t (mk_key i) ~now:(Int64.of_int i));
    ignore (Ft.insert t (mk_key i) ~now:(Int64.of_int i))
  done;
  for i = 1 to 4 do
    ignore (Ft.lookup t (mk_key i) ~now:10L)
  done;
  let s = Ft.stats t in
  let deltas = List.map2 (fun a b -> a - b) (snap ()) before in
  check int_t "oracle lookups" s.Ft.lookups (List.nth deltas 0);
  check int_t "oracle hits" s.Ft.hits (List.nth deltas 1);
  check int_t "oracle misses" s.Ft.misses (List.nth deltas 2);
  check int_t "inserts" 5 (List.nth deltas 3);
  check int_t "oracle recycled" s.Ft.recycled (List.nth deltas 4);
  check int_t "recycled once" 1 s.Ft.recycled

(* --- Integration: gate dispatch counters over the data path ---------- *)

let test_gate_dispatch_counters () =
  let open Rp_core in
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~mode:Router.Plugins ~ifaces () in
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:1 ~dport:9 ~iface:0
  in
  let d_before = Counter.get (Gate.dispatch Gate.Firewall) in
  let p_before = Counter.get (Registry.counter "ip_core.packets") in
  let f_before = Counter.get (Registry.counter "ip_core.forwarded") in
  for _ = 1 to 10 do
    match Ip_core.process r ~now:0L (Mbuf.synth ~key ~len:100 ()) with
    | Ip_core.Enqueued out -> ignore (Iface.dequeue (Router.iface r out) ~now:0L)
    | v -> Alcotest.failf "unexpected verdict: %s" (Format.asprintf "%a" Ip_core.pp_verdict v)
  done;
  check int_t "one firewall dispatch per packet" 10
    (Counter.get (Gate.dispatch Gate.Firewall) - d_before);
  check int_t "ip_core.packets" 10
    (Counter.get (Registry.counter "ip_core.packets") - p_before);
  check int_t "ip_core.forwarded" 10
    (Counter.get (Registry.counter "ip_core.forwarded") - f_before)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "overflow wraps" `Quick test_counter_overflow;
          Alcotest.test_case "concurrent domains" `Quick
            test_counter_concurrent;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "bad bounds" `Quick test_histogram_bad_bounds;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_registry_get_or_create;
          Alcotest.test_case "gauge replace" `Quick test_registry_gauge_replace;
          Alcotest.test_case "deterministic dump" `Quick
            test_registry_dump_deterministic;
          Alcotest.test_case "reset" `Quick test_registry_reset;
          Alcotest.test_case "json validity" `Quick test_registry_json_valid;
        ] );
      ( "trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ] );
      ( "integration",
        [
          Alcotest.test_case "flow-table counters vs oracle" `Quick
            test_flow_table_counters_match_oracle;
          Alcotest.test_case "gate dispatch counters" `Quick
            test_gate_dispatch_counters;
        ] );
    ]
