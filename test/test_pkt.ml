(* Tests for the rp_pkt substrate: addresses, prefixes, headers,
   checksums, and the mbuf parse/build round trip. *)

open Rp_pkt

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- generators ----------------------------------------------------- *)

let gen_v4_full =
  QCheck2.Gen.map
    (fun (a, b) ->
      Ipaddr.v4_of_int32
        (Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)))
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 0xFFFF))

let gen_v6 =
  QCheck2.Gen.map
    (fun (a, b, c, d) ->
      Ipaddr.v6 (Int32.of_int a) (Int32.of_int b) (Int32.of_int c) (Int32.of_int d))
    (QCheck2.Gen.quad (QCheck2.Gen.int_bound 0xFFFFFF) (QCheck2.Gen.int_bound 0xFFFFFF)
       (QCheck2.Gen.int_bound 0xFFFFFF) (QCheck2.Gen.int_bound 0xFFFFFF))

let gen_addr = QCheck2.Gen.oneof [ gen_v4_full; gen_v6 ]

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Ipaddr --------------------------------------------------------- *)

let test_v4_to_string () =
  check string_t "dotted quad" "129.132.19.40"
    (Ipaddr.to_string (Ipaddr.v4 129 132 19 40));
  check string_t "zero" "0.0.0.0" (Ipaddr.to_string Ipaddr.zero_v4);
  check string_t "broadcast" "255.255.255.255"
    (Ipaddr.to_string (Ipaddr.v4 255 255 255 255))

let test_v4_of_string () =
  check bool_t "roundtrip" true
    (Ipaddr.equal (Ipaddr.of_string "192.94.233.10") (Ipaddr.v4 192 94 233 10));
  check bool_t "reject octet" true (Ipaddr.of_string_opt "256.0.0.1" = None);
  check bool_t "reject short" true (Ipaddr.of_string_opt "10.0.0" = None);
  check bool_t "reject empty octet" true (Ipaddr.of_string_opt "10..0.1" = None)

let test_v6_strings () =
  let cases =
    [
      "::1";
      "fe80::1";
      "2001:db8::8:800:200c:417a";
      "ff01::101";
      "::";
      "1:2:3:4:5:6:7:8";
    ]
  in
  List.iter
    (fun s ->
      match Ipaddr.of_string_opt s with
      | None -> Alcotest.failf "failed to parse %s" s
      | Some a ->
        check string_t (Printf.sprintf "canonical %s" s) s (Ipaddr.to_string a))
    cases

let test_v6_parse_variants () =
  (* Non-canonical spellings parse to the same address. *)
  let eq a b =
    Ipaddr.equal (Ipaddr.of_string a) (Ipaddr.of_string b)
  in
  check bool_t "leading zeros" true (eq "2001:0db8::1" "2001:db8::1");
  check bool_t "full form" true (eq "0:0:0:0:0:0:0:1" "::1");
  check bool_t "reject double ::" true (Ipaddr.of_string_opt "1::2::3" = None);
  check bool_t "reject 9 groups" true
    (Ipaddr.of_string_opt "1:2:3:4:5:6:7:8:9" = None)

let test_bits () =
  let a = Ipaddr.v4 128 0 0 1 in
  check bool_t "bit 0 set" true (Ipaddr.bit a 0);
  check bool_t "bit 1 clear" false (Ipaddr.bit a 1);
  check bool_t "bit 31 set" true (Ipaddr.bit a 31);
  let six = Ipaddr.of_string "8000::1" in
  check bool_t "v6 bit 0" true (Ipaddr.bit six 0);
  check bool_t "v6 bit 127" true (Ipaddr.bit six 127);
  check bool_t "v6 bit 64" false (Ipaddr.bit six 64)

let test_prefix_bits () =
  let a = Ipaddr.v4 129 132 19 40 in
  check string_t "/8" "129.0.0.0" (Ipaddr.to_string (Ipaddr.prefix_bits a 8));
  check string_t "/16" "129.132.0.0" (Ipaddr.to_string (Ipaddr.prefix_bits a 16));
  check string_t "/0" "0.0.0.0" (Ipaddr.to_string (Ipaddr.prefix_bits a 0));
  check string_t "/32" "129.132.19.40" (Ipaddr.to_string (Ipaddr.prefix_bits a 32))

let test_common_prefix_len () =
  let a = Ipaddr.v4 129 132 19 40 and b = Ipaddr.v4 129 132 19 41 in
  check int_t "one bit differs at 31" 31 (Ipaddr.common_prefix_len a b);
  check int_t "equal" 32 (Ipaddr.common_prefix_len a a);
  check int_t "disjoint" 0
    (Ipaddr.common_prefix_len (Ipaddr.v4 128 0 0 0) (Ipaddr.v4 1 0 0 0));
  let x = Ipaddr.of_string "2001:db8::1" and y = Ipaddr.of_string "2001:db8::2" in
  check int_t "v6 lower word" 126 (Ipaddr.common_prefix_len x y)

let prop_string_roundtrip =
  qtest "ipaddr: of_string (to_string a) = a" gen_addr (fun a ->
      Ipaddr.equal a (Ipaddr.of_string (Ipaddr.to_string a)))

let prop_bytes_roundtrip =
  qtest "ipaddr: read (write a) = a" gen_addr (fun a ->
      let b = Ipaddr.to_bytes a in
      let a' =
        if Ipaddr.is_v4 a then Ipaddr.read_v4 b 0 else Ipaddr.read_v6 b 0
      in
      Ipaddr.equal a a')

let prop_common_prefix_symmetric =
  qtest "ipaddr: common_prefix_len symmetric" (QCheck2.Gen.pair gen_v4_full gen_v4_full)
    (fun (a, b) -> Ipaddr.common_prefix_len a b = Ipaddr.common_prefix_len b a)

(* --- Prefix --------------------------------------------------------- *)

let test_prefix_basics () =
  let p = Prefix.of_string "129.0.0.0/8" in
  check bool_t "matches inside" true (Prefix.matches p (Ipaddr.v4 129 1 2 3));
  check bool_t "no match outside" false (Prefix.matches p (Ipaddr.v4 130 1 2 3));
  check bool_t "wildcard matches" true
    (Prefix.matches Prefix.any_v4 (Ipaddr.v4 1 2 3 4));
  check bool_t "family mismatch" false
    (Prefix.matches Prefix.any_v4 (Ipaddr.of_string "::1"))

let test_prefix_normalize () =
  let p = Prefix.make (Ipaddr.v4 129 132 19 40) 8 in
  check string_t "host bits dropped" "129.0.0.0/8" (Prefix.to_string p)

let test_prefix_subsumes () =
  let sub = Prefix.subsumes in
  let p8 = Prefix.of_string "128.0.0.0/8"
  and p16 = Prefix.of_string "128.252.0.0/16"
  and q16 = Prefix.of_string "129.252.0.0/16" in
  check bool_t "/8 subsumes /16" true (sub p8 p16);
  check bool_t "/16 not subsumes /8" false (sub p16 p8);
  check bool_t "disjoint" false (sub p8 q16);
  check bool_t "self" true (sub p16 p16);
  check bool_t "any subsumes all" true (sub Prefix.any_v4 p16)

let gen_prefix_v4 =
  QCheck2.Gen.map
    (fun (a, len) -> Prefix.make a len)
    (QCheck2.Gen.pair gen_v4_full (QCheck2.Gen.int_bound 32))

let prop_prefix_matches_self =
  qtest "prefix: matches own address" gen_prefix_v4 (fun p ->
      Prefix.matches p p.Prefix.addr)

let prop_prefix_subsumes_matches =
  qtest "prefix: subsumes => matches superset"
    (QCheck2.Gen.triple gen_prefix_v4 gen_prefix_v4 gen_v4_full)
    (fun (p, q, a) ->
      (* If p subsumes q and q matches a, then p matches a. *)
      QCheck2.assume (Prefix.subsumes p q);
      (not (Prefix.matches q a)) || Prefix.matches p a)

let prop_prefix_string_roundtrip =
  qtest "prefix: of_string (to_string p) = p" gen_prefix_v4 (fun p ->
      Prefix.equal p (Prefix.of_string (Prefix.to_string p)))

(* --- Checksum ------------------------------------------------------- *)

let test_checksum_rfc1071 () =
  (* Example from RFC 1071 section 3. *)
  let buf = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check int_t "rfc1071 example" (lnot 0xddf2 land 0xFFFF)
    (Checksum.compute buf 0 8)

let test_checksum_verifies () =
  let buf = Bytes.of_string "\x45\x00\x00\x1cabcdefghij\x00\x00\x00\x00\x00\x00" in
  (* The checksum field must be zero while computing. *)
  Bytes.set buf 10 '\000';
  Bytes.set buf 11 '\000';
  let c = Checksum.compute buf 0 20 in
  Bytes.set buf 10 (Char.chr (c lsr 8));
  Bytes.set buf 11 (Char.chr (c land 0xFF));
  check bool_t "embeds and verifies" true (Checksum.valid buf 0 20)

let prop_checksum_detects_flip =
  qtest "checksum: detects single-byte corruption"
    QCheck2.Gen.(pair (bytes_size (int_range 21 64)) (int_bound 1000))
    (fun (raw, pos) ->
      let buf = Bytes.copy raw in
      let len = Bytes.length buf in
      (* Embed a checksum at offset 0-1. *)
      Bytes.set buf 0 '\000';
      Bytes.set buf 1 '\000';
      let c = Checksum.compute buf 0 len in
      Bytes.set buf 0 (Char.chr (c lsr 8));
      Bytes.set buf 1 (Char.chr (c land 0xFF));
      QCheck2.assume (Checksum.valid buf 0 len);
      let pos = 2 + (pos mod (len - 2)) in
      let original = Char.code (Bytes.get buf pos) in
      (* Flip to a value whose 16-bit word changes the sum. *)
      let flipped = original lxor 0x5A in
      QCheck2.assume (flipped <> original);
      Bytes.set buf pos (Char.chr flipped);
      not (Checksum.valid buf 0 len))

(* RFC 1624 incremental update: adjusting the embedded checksum for a
   16-bit word change must agree with recomputing over the whole
   buffer.  One's-complement checksums have two representations of
   zero (0x0000 / 0xFFFF), so equality is modulo that class. *)
let prop_checksum_adjust =
  qtest "checksum: RFC 1624 adjust = full recompute"
    QCheck2.Gen.(
      triple (bytes_size (int_range 20 64)) (int_bound 1000) (int_bound 0xFFFF))
    (fun (raw, pos, new_word) ->
      let buf = Bytes.copy raw in
      let len = Bytes.length buf land lnot 1 in
      Bytes.set_uint16_be buf 0 0;
      let c = Checksum.compute buf 0 len in
      Bytes.set_uint16_be buf 0 c;
      (* pick an even offset past the checksum field *)
      let off = 2 + (2 * (pos mod ((len - 2) / 2))) in
      let old_word = Bytes.get_uint16_be buf off in
      let adjusted = Checksum.adjust c ~old_word ~new_word in
      Bytes.set_uint16_be buf off new_word;
      Bytes.set_uint16_be buf 0 0;
      let full = Checksum.compute buf 0 len in
      let norm x = x mod 0xFFFF in
      (* the adjusted checksum also still verifies in place *)
      Bytes.set_uint16_be buf 0 adjusted;
      norm adjusted = norm full && Checksum.valid buf 0 len)

let test_checksum_adjust_identity () =
  (* replacing a word with itself must not change the checksum (mod
     the zero class) *)
  check int_t "identity" (0x1234 mod 0xFFFF)
    (Checksum.adjust 0x1234 ~old_word:0xBEEF ~new_word:0xBEEF mod 0xFFFF)

(* --- IPv4 header ---------------------------------------------------- *)

let test_ipv4_roundtrip () =
  let h =
    Ipv4_header.default ~tos:0x10 ~ident:4242 ~ttl:17 ~total_length:1500
      ~proto:Proto.udp ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 10 0 0 2) ()
  in
  let buf = Bytes.create 20 in
  Ipv4_header.serialize h buf 0;
  match Ipv4_header.parse buf 0 with
  | Error e -> Alcotest.failf "parse: %a" Ipv4_header.pp_error e
  | Ok h' ->
    check int_t "tos" h.Ipv4_header.tos h'.Ipv4_header.tos;
    check int_t "len" 1500 h'.Ipv4_header.total_length;
    check int_t "ttl" 17 h'.Ipv4_header.ttl;
    check bool_t "src" true (Ipaddr.equal h.Ipv4_header.src h'.Ipv4_header.src)

let test_ipv4_bad_checksum () =
  let h =
    Ipv4_header.default ~total_length:100 ~proto:Proto.tcp
      ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 10 0 0 2) ()
  in
  let buf = Bytes.create 20 in
  Ipv4_header.serialize h buf 0;
  Bytes.set buf 8 '\xAA';
  check bool_t "detected" true
    (match Ipv4_header.parse buf 0 with
     | Error Ipv4_header.Bad_checksum -> true
     | Ok _ | Error _ -> false)

let test_ipv4_truncated () =
  check bool_t "truncated" true
    (match Ipv4_header.parse (Bytes.create 10) 0 with
     | Error Ipv4_header.Truncated -> true
     | Ok _ | Error _ -> false)

(* --- IPv6 header and options ---------------------------------------- *)

let test_ipv6_roundtrip () =
  let h =
    Ipv6_header.default ~traffic_class:0xB8 ~flow_label:0xABCDE ~hop_limit:3
      ~payload_length:512 ~next_header:Proto.udp
      ~src:(Ipaddr.of_string "2001:db8::1") ~dst:(Ipaddr.of_string "2001:db8::2") ()
  in
  let buf = Bytes.create 40 in
  Ipv6_header.serialize h buf 0;
  match Ipv6_header.parse buf 0 with
  | Error e -> Alcotest.failf "parse: %a" Ipv6_header.pp_error e
  | Ok h' ->
    check int_t "tclass" 0xB8 h'.Ipv6_header.traffic_class;
    check int_t "flow label" 0xABCDE h'.Ipv6_header.flow_label;
    check int_t "plen" 512 h'.Ipv6_header.payload_length;
    check bool_t "dst" true (Ipaddr.equal h.Ipv6_header.dst h'.Ipv6_header.dst)

let test_hop_by_hop_roundtrip () =
  let open Ipv6_header in
  let hbh =
    {
      Hop_by_hop.next_header = Proto.udp;
      options = [ Option_tlv.Router_alert 0; Option_tlv.Jumbo_payload 100000 ];
    }
  in
  let len = Hop_by_hop.wire_length hbh in
  check int_t "multiple of 8" 0 (len mod 8);
  let buf = Bytes.create len in
  let written = Hop_by_hop.serialize hbh buf 0 in
  check int_t "written" len written;
  match Hop_by_hop.parse buf 0 with
  | Error e -> Alcotest.failf "parse: %a" pp_error e
  | Ok (hbh', len') ->
    check int_t "length back" len len';
    check int_t "next header" Proto.udp hbh'.Hop_by_hop.next_header;
    let alerts =
      List.filter
        (function Option_tlv.Router_alert _ -> true | _ -> false)
        hbh'.Hop_by_hop.options
    in
    check int_t "router alert survives" 1 (List.length alerts)

(* --- UDP / TCP ------------------------------------------------------ *)

let test_udp_roundtrip () =
  let u = { Udp_header.sport = 5000; dport = 6000; length = 108; checksum = 0 } in
  let buf = Bytes.create 8 in
  Udp_header.serialize u buf 0;
  match Udp_header.parse buf 0 with
  | Error e -> Alcotest.failf "parse: %a" Udp_header.pp_error e
  | Ok u' ->
    check int_t "sport" 5000 u'.Udp_header.sport;
    check int_t "dport" 6000 u'.Udp_header.dport;
    check int_t "length" 108 u'.Udp_header.length

let test_tcp_roundtrip () =
  let t =
    {
      Tcp_header.sport = 80;
      dport = 43210;
      seq = 0x12345678l;
      ack_seq = 0x9ABCDEF0l;
      flags = { Tcp_header.no_flags with syn = true; ack = true };
      window = 8192;
      checksum = 0;
      urgent = 0;
    }
  in
  let buf = Bytes.create 20 in
  Tcp_header.serialize t buf 0;
  match Tcp_header.parse buf 0 with
  | Error e -> Alcotest.failf "parse: %a" Tcp_header.pp_error e
  | Ok t' ->
    check bool_t "syn" true t'.Tcp_header.flags.Tcp_header.syn;
    check bool_t "fin" false t'.Tcp_header.flags.Tcp_header.fin;
    check int_t "window" 8192 t'.Tcp_header.window;
    check bool_t "seq" true (t'.Tcp_header.seq = 0x12345678l)

(* --- Flow_key ------------------------------------------------------- *)

let test_flow_key_equal_hash () =
  let k1 =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 10 0 0 2)
      ~proto:Proto.udp ~sport:1000 ~dport:2000 ~iface:0
  in
  let k2 = { k1 with Flow_key.iface = 0 } in
  check bool_t "equal" true (Flow_key.equal k1 k2);
  check int_t "hash equal" (Flow_key.hash k1) (Flow_key.hash k2);
  let k3 = { k1 with Flow_key.dport = 2001 } in
  check bool_t "different" false (Flow_key.equal k1 k3)

(* Regression: the hash used to omit [iface] while [equal] includes
   it, so flows differing only by incoming interface — distinct flows
   of the paper's 6-tuple — systematically collided into the same
   bucket. *)
let test_flow_key_iface_hashes_apart () =
  let k iface =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 10 0 0 2)
      ~proto:Proto.udp ~sport:1000 ~dport:2000 ~iface
  in
  check bool_t "iface-differing keys are distinct flows" false
    (Flow_key.equal (k 0) (k 1));
  check bool_t "iface participates in the hash" true
    (Flow_key.hash (k 0) <> Flow_key.hash (k 1));
  (* The difference must reach the low bits that pick the bucket
     (default table: 32768 buckets). *)
  List.iter
    (fun other ->
      check bool_t
        (Printf.sprintf "if0 and if%d land in different buckets" other)
        true
        (Flow_key.hash (k 0) mod 32768 <> Flow_key.hash (k other) mod 32768))
    [ 1; 2; 3; 7; 15 ]

let test_flow_key_reverse () =
  let k =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 9)
      ~proto:Proto.tcp ~sport:4000 ~dport:80 ~iface:3
  in
  let r = Flow_key.reverse k in
  check bool_t "src/dst swapped" true
    (Ipaddr.equal r.Flow_key.src k.Flow_key.dst
    && Ipaddr.equal r.Flow_key.dst k.Flow_key.src);
  check int_t "sport" 80 r.Flow_key.sport;
  check int_t "dport" 4000 r.Flow_key.dport;
  check int_t "iface kept by default" 3 r.Flow_key.iface;
  check int_t "iface override" 7 (Flow_key.reverse ~iface:7 k).Flow_key.iface;
  check bool_t "involution" true
    (Flow_key.equal (Flow_key.reverse (Flow_key.reverse k)) k)

let test_flow_key_canonical () =
  let k =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 9)
      ~proto:Proto.tcp ~sport:4000 ~dport:80 ~iface:3
  in
  let ck, d = Flow_key.canonical k in
  let cr, dr = Flow_key.canonical (Flow_key.reverse ~iface:5 k) in
  check bool_t "both directions canonicalize to one key" true
    (Flow_key.equal ck cr);
  check bool_t "direction bits differ" true (d <> dr);
  check int_t "canonical zeroes the iface" 0 ck.Flow_key.iface;
  check int_t "canonical_hash is direction-blind" (Flow_key.canonical_hash k)
    (Flow_key.canonical_hash (Flow_key.reverse ~iface:5 k));
  (* canonical is idempotent and reports Fwd on an already-canonical
     key *)
  let ck2, d2 = Flow_key.canonical ck in
  check bool_t "idempotent" true (Flow_key.equal ck ck2 && d2 = Flow_key.Fwd)

let gen_sym_key_v4 =
  QCheck2.Gen.map
    (fun ((a, b), (sp, dp), (tcp, ifc)) ->
      Flow_key.make ~src:(Ipaddr.v4 10 0 0 a) ~dst:(Ipaddr.v4 10 0 0 b)
        ~proto:(if tcp then Proto.tcp else Proto.udp) ~sport:sp ~dport:dp
        ~iface:ifc)
    (QCheck2.Gen.triple
       (QCheck2.Gen.pair (QCheck2.Gen.int_bound 3) (QCheck2.Gen.int_bound 3))
       (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 3))
       (QCheck2.Gen.pair QCheck2.Gen.bool (QCheck2.Gen.int_bound 7)))

let gen_sym_key_v6 =
  QCheck2.Gen.map
    (fun ((src, dst), (sp, dp), ifc) ->
      Flow_key.make ~src ~dst ~proto:Proto.tcp ~sport:sp ~dport:dp ~iface:ifc)
    (QCheck2.Gen.triple (QCheck2.Gen.pair gen_v6 gen_v6)
       (QCheck2.Gen.pair (QCheck2.Gen.int_bound 0xFFFF) (QCheck2.Gen.int_bound 0xFFFF))
       (QCheck2.Gen.int_bound 7))

let gen_sym_key = QCheck2.Gen.oneof [ gen_sym_key_v4; gen_sym_key_v6 ]

let prop_canonical_collapses_direction =
  qtest "flow_key: canonical collapses direction" gen_sym_key (fun k ->
      let r = Flow_key.reverse ~iface:(7 - k.Flow_key.iface) k in
      let ck, d = Flow_key.canonical k in
      let cr, dr = Flow_key.canonical r in
      Flow_key.equal ck cr
      && Flow_key.canonical_hash k = Flow_key.canonical_hash r
      (* the direction bits are opposite unless the tuple is perfectly
         symmetric (src = dst and sport = dport) *)
      && (d <> dr
         || (Ipaddr.equal k.Flow_key.src k.Flow_key.dst
            && k.Flow_key.sport = k.Flow_key.dport)))

let prop_reverse_involution =
  qtest "flow_key: reverse (reverse k) = k" gen_sym_key (fun k ->
      Flow_key.equal (Flow_key.reverse (Flow_key.reverse k)) k)

(* --- Mbuf ----------------------------------------------------------- *)

let test_mbuf_udp_v4_roundtrip () =
  let m =
    Mbuf.udp_v4 ~src:(Ipaddr.v4 192 168 1 1) ~dst:(Ipaddr.v4 192 168 1 2)
      ~sport:1234 ~dport:4321 ~iface:2 ~payload:"hello world" ()
  in
  match m.Mbuf.raw with
  | None -> Alcotest.fail "no raw bytes"
  | Some raw ->
    (match Mbuf.of_bytes ~iface:2 raw with
     | Error e -> Alcotest.failf "parse: %a" Mbuf.pp_error e
     | Ok m' ->
       check bool_t "key" true (Flow_key.equal m.Mbuf.key m'.Mbuf.key);
       check int_t "len" m.Mbuf.len m'.Mbuf.len)

let test_mbuf_udp_v6_roundtrip () =
  let m =
    Mbuf.udp_v6 ~flow_label:99
      ~options:[ Ipv6_header.Option_tlv.Router_alert 0 ]
      ~src:(Ipaddr.of_string "2001:db8::1") ~dst:(Ipaddr.of_string "2001:db8::2")
      ~sport:53 ~dport:53 ~iface:1 ~payload:"dns-ish" ()
  in
  match m.Mbuf.raw with
  | None -> Alcotest.fail "no raw bytes"
  | Some raw ->
    (match Mbuf.of_bytes ~iface:1 raw with
     | Error e -> Alcotest.failf "parse: %a" Mbuf.pp_error e
     | Ok m' ->
       check bool_t "key" true (Flow_key.equal m.Mbuf.key m'.Mbuf.key);
       check int_t "flow label" 99 m'.Mbuf.flow_label;
       check int_t "options" 1 (List.length m'.Mbuf.options))

let test_mbuf_udp_checksum_valid () =
  let src = Ipaddr.v4 10 1 1 1 and dst = Ipaddr.v4 10 1 1 2 in
  let m = Mbuf.udp_v4 ~src ~dst ~sport:7 ~dport:7 ~iface:0 ~payload:"payload" () in
  match m.Mbuf.raw with
  | None -> Alcotest.fail "no raw"
  | Some raw ->
    let udp_len = m.Mbuf.len - Ipv4_header.size in
    (* Recomputing over the datagram with its embedded checksum
       treated as zero must reproduce the embedded value. *)
    let embedded =
      Char.code (Bytes.get raw (Ipv4_header.size + 6)) * 256
      + Char.code (Bytes.get raw (Ipv4_header.size + 7))
    in
    let expect = Udp_header.compute_checksum ~src ~dst raw Ipv4_header.size udp_len in
    check int_t "udp checksum" expect embedded

let prop_mbuf_v4_roundtrip =
  qtest ~count:200 "mbuf: udp_v4 build/parse roundtrip"
    QCheck2.Gen.(
      tup5 gen_v4_full gen_v4_full (int_bound 65535) (int_bound 65535)
        (string_size (int_range 0 100)))
    (fun (src, dst, sport, dport, payload) ->
      let m = Mbuf.udp_v4 ~src ~dst ~sport ~dport ~iface:0 ~payload () in
      match m.Mbuf.raw with
      | None -> false
      | Some raw ->
        (match Mbuf.of_bytes ~iface:0 raw with
         | Ok m' -> Flow_key.equal m.Mbuf.key m'.Mbuf.key && m.Mbuf.len = m'.Mbuf.len
         | Error _ -> false))

(* --- pool ----------------------------------------------------------- *)

let pool_key id =
  Flow_key.make
    ~src:(Ipaddr.v4 10 0 0 1)
    ~dst:(Ipaddr.v4 192 168 1 (1 + (id mod 250)))
    ~proto:17 ~sport:(1024 + (id mod 60000)) ~dport:9000 ~iface:0

let test_pool_alloc_free () =
  let p = Pool.create ~capacity:8 () in
  check int_t "fresh pool full" 8 (Pool.available p);
  let m = Pool.alloc p ~key:(pool_key 0) ~len:64 in
  check int_t "one out" 7 (Pool.available p);
  check int_t "ttl reset" 64 m.Mbuf.ttl;
  check bool_t "v4 from key" true (m.Mbuf.version = Mbuf.V4);
  check int_t "len set" 64 m.Mbuf.len;
  check bool_t "backing buffer attached" true (m.Mbuf.raw <> None);
  Pool.free p m;
  check int_t "back home" 8 (Pool.available p);
  let s = Pool.stats p in
  check int_t "allocs" 1 s.Pool.allocs;
  check int_t "frees" 1 s.Pool.frees

let test_pool_exhaustion () =
  let p = Pool.create ~buf_size:0 ~capacity:2 () in
  let _a = Pool.alloc p ~key:(pool_key 0) ~len:64 in
  let _b = Pool.alloc p ~key:(pool_key 1) ~len:64 in
  check bool_t "alloc on empty raises" true
    (match Pool.alloc p ~key:(pool_key 2) ~len:64 with
    | exception Pool.Empty -> true
    | _ -> false);
  check int_t "exhaustion counted" 1 (Pool.stats p).Pool.exhausted

let test_pool_double_free () =
  let p = Pool.create ~buf_size:0 ~capacity:4 () in
  let m = Pool.alloc p ~key:(pool_key 0) ~len:64 in
  Pool.free p m;
  Pool.free p m;
  check int_t "free list intact" 4 (Pool.available p);
  check int_t "double free counted" 1 (Pool.stats p).Pool.double_frees

let test_pool_foreign_free () =
  let p = Pool.create ~buf_size:0 ~capacity:4 () in
  let q = Pool.create ~buf_size:0 ~capacity:4 () in
  let m = Pool.alloc p ~key:(pool_key 0) ~len:64 in
  Pool.free q m;
  check int_t "other pool unchanged" 4 (Pool.available q);
  check int_t "foreign free counted" 1 (Pool.stats q).Pool.foreign_frees;
  Pool.free q (Mbuf.synth ~key:(pool_key 1) ~len:64 ());
  check int_t "unpooled mbuf counted" 2 (Pool.stats q).Pool.foreign_frees;
  Pool.free p m;
  check int_t "real owner accepts" 4 (Pool.available p)

(* An adversarial op sequence (including over-alloc and over-free)
   must keep [available] = capacity - live descriptors: the free list
   is never corrupted or leaked. *)
let prop_pool_conservation =
  qtest ~count:200 "pool: descriptor conservation under random ops"
    QCheck2.Gen.(list_size (int_range 0 200) (int_bound 2))
    (fun ops ->
      let cap = 16 in
      let p = Pool.create ~buf_size:0 ~capacity:cap () in
      let live = Queue.create () in
      List.iter
        (fun op ->
          if op > 0 then (
            match Pool.alloc p ~key:(pool_key op) ~len:64 with
            | m -> Queue.push m live
            | exception Pool.Empty -> ())
          else
            match Queue.pop live with
            | m -> Pool.free p m
            | exception Queue.Empty -> ())
        ops;
      Pool.available p = cap - Queue.length live)

(* The whole point of the pool: the steady-state alloc/free cycle does
   not touch the GC.  10k cycles with per-packet allocation would show
   up as tens of thousands of minor words; allow a small constant
   slack for the [Gc.minor_words] boxing itself. *)
let test_pool_gc_silent () =
  let p = Pool.create ~capacity:64 () in
  let key = pool_key 0 in
  let spin () =
    for _ = 1 to 10_000 do
      let m = Pool.alloc p ~key ~len:64 in
      Pool.free p m
    done
  in
  spin ();
  let before = Gc.minor_words () in
  spin ();
  let delta = Gc.minor_words () -. before in
  check bool_t
    (Printf.sprintf "steady state GC-silent (%.0f minor words)" delta)
    true
    (delta < 100.)

(* --- link ----------------------------------------------------------- *)

let link_mk i =
  let m = Mbuf.synth ~key:(pool_key i) ~len:64 () in
  m.Mbuf.seq <- i;
  m

let test_link_fifo () =
  let l = Link.create ~capacity:4 () in
  check int_t "capacity" 4 (Link.capacity l);
  check bool_t "starts empty" true (Link.is_empty l);
  for i = 0 to 3 do
    check bool_t "transmit accepted" true (Link.transmit l (link_mk i))
  done;
  check bool_t "full" true (Link.is_full l);
  check bool_t "overflow refused" false (Link.transmit l (link_mk 99));
  check int_t "txdrops" 1 (Link.txdrops l);
  check int_t "first out" 0 (Link.receive l).Mbuf.seq;
  check int_t "second out" 1 (Link.receive l).Mbuf.seq;
  check int_t "readable" 2 (Link.nreadable l);
  check bool_t "transmit after pop (wrap)" true (Link.transmit l (link_mk 4));
  check int_t "third" 2 (Link.receive l).Mbuf.seq;
  check int_t "fourth" 3 (Link.receive l).Mbuf.seq;
  check int_t "fifth" 4 (Link.receive l).Mbuf.seq;
  check bool_t "receive on empty raises" true
    (match Link.receive l with
    | exception Link.Empty -> true
    | _ -> false);
  check int_t "txpackets" 5 (Link.txpackets l);
  check int_t "rxpackets" 5 (Link.rxpackets l)

let test_link_receive_batch () =
  let l = Link.create ~capacity:8 () in
  for i = 0 to 5 do
    ignore (Link.transmit l (link_mk i))
  done;
  let dst = Array.make 8 (link_mk 0) in
  let n = Link.receive_batch l ~max:4 dst in
  check int_t "batch of four" 4 n;
  for i = 0 to 3 do
    check int_t "batch order" i dst.(i).Mbuf.seq
  done;
  check int_t "remainder" 2 (Link.receive_batch l ~max:8 dst);
  check int_t "tail order" 4 dst.(0).Mbuf.seq;
  check int_t "batch on empty" 0 (Link.receive_batch l ~max:4 dst)

(* Capacity is a budget: non-power-of-two requests round DOWN, so a
   link never buffers more than the caller asked for (silently rounding
   300 up to 512 would shift drop/backpressure thresholds). *)
let test_link_capacity_rounds_down () =
  check int_t "exact power kept" 256 (Link.capacity (Link.create ~capacity:256 ()));
  check int_t "300 -> 256" 256 (Link.capacity (Link.create ~capacity:300 ()));
  check int_t "511 -> 256" 256 (Link.capacity (Link.create ~capacity:511 ()));
  check int_t "512 kept" 512 (Link.capacity (Link.create ~capacity:512 ()));
  check int_t "5 -> 4" 4 (Link.capacity (Link.create ~capacity:5 ()));
  check int_t "1 kept" 1 (Link.capacity (Link.create ~capacity:1 ()));
  check bool_t "capacity < 1 rejected" true
    (match Link.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* The ring really is bounded by the rounded-down figure. *)
  let l = Link.create ~capacity:300 () in
  for i = 0 to 255 do
    check bool_t "transmit within bound" true (Link.transmit l (link_mk i))
  done;
  check bool_t "256th packet refused" false (Link.transmit l (link_mk 256))

let prop_link_fifo =
  qtest ~count:200 "link: FIFO under random tx/rx interleaving"
    QCheck2.Gen.(list_size (int_range 0 200) (int_bound 1))
    (fun ops ->
      let l = Link.create ~capacity:8 () in
      let next = ref 0 and expect = ref 0 and ok = ref true in
      List.iter
        (fun op ->
          if op = 1 then begin
            let m = link_mk !next in
            if Link.transmit l m then incr next
          end
          else if not (Link.is_empty l) then begin
            if (Link.receive l).Mbuf.seq <> !expect then ok := false;
            incr expect
          end)
        ops;
      !ok && Link.rxpackets l = !expect)

let () =
  Alcotest.run "rp_pkt"
    [
      ( "ipaddr",
        [
          Alcotest.test_case "v4 to_string" `Quick test_v4_to_string;
          Alcotest.test_case "v4 of_string" `Quick test_v4_of_string;
          Alcotest.test_case "v6 strings" `Quick test_v6_strings;
          Alcotest.test_case "v6 parse variants" `Quick test_v6_parse_variants;
          Alcotest.test_case "bit access" `Quick test_bits;
          Alcotest.test_case "prefix_bits" `Quick test_prefix_bits;
          Alcotest.test_case "common_prefix_len" `Quick test_common_prefix_len;
          prop_string_roundtrip;
          prop_bytes_roundtrip;
          prop_common_prefix_symmetric;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "basics" `Quick test_prefix_basics;
          Alcotest.test_case "normalize" `Quick test_prefix_normalize;
          Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
          prop_prefix_matches_self;
          prop_prefix_subsumes_matches;
          prop_prefix_string_roundtrip;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc1071;
          Alcotest.test_case "embed and verify" `Quick test_checksum_verifies;
          Alcotest.test_case "adjust identity" `Quick test_checksum_adjust_identity;
          prop_checksum_detects_flip;
          prop_checksum_adjust;
        ] );
      ( "headers",
        [
          Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "ipv4 bad checksum" `Quick test_ipv4_bad_checksum;
          Alcotest.test_case "ipv4 truncated" `Quick test_ipv4_truncated;
          Alcotest.test_case "ipv6 roundtrip" `Quick test_ipv6_roundtrip;
          Alcotest.test_case "hop-by-hop roundtrip" `Quick test_hop_by_hop_roundtrip;
          Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
        ] );
      ( "flow_key",
        [
          Alcotest.test_case "equal/hash" `Quick test_flow_key_equal_hash;
          Alcotest.test_case "iface hashes apart" `Quick
            test_flow_key_iface_hashes_apart;
          Alcotest.test_case "reverse" `Quick test_flow_key_reverse;
          Alcotest.test_case "canonical" `Quick test_flow_key_canonical;
          prop_canonical_collapses_direction;
          prop_reverse_involution;
        ] );
      ( "mbuf",
        [
          Alcotest.test_case "udp v4 roundtrip" `Quick test_mbuf_udp_v4_roundtrip;
          Alcotest.test_case "udp v6 roundtrip" `Quick test_mbuf_udp_v6_roundtrip;
          Alcotest.test_case "udp checksum" `Quick test_mbuf_udp_checksum_valid;
          prop_mbuf_v4_roundtrip;
        ] );
      ( "pool",
        [
          Alcotest.test_case "alloc/free round trip" `Quick test_pool_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "double free is a no-op" `Quick test_pool_double_free;
          Alcotest.test_case "foreign free is a no-op" `Quick
            test_pool_foreign_free;
          Alcotest.test_case "steady state is GC-silent" `Quick
            test_pool_gc_silent;
          prop_pool_conservation;
        ] );
      ( "link",
        [
          Alcotest.test_case "fifo, overflow, wrap" `Quick test_link_fifo;
          Alcotest.test_case "receive_batch" `Quick test_link_receive_batch;
          Alcotest.test_case "capacity rounds down" `Quick
            test_link_capacity_rounds_down;
          prop_link_fifo;
        ] );
    ]
