(* Tests for the unified session subsystem: the bidirectional session
   table (NAT rewrite + conntrack + QoS + cached next-hop behind one
   hit), its plugins on the live data path, expiry/export, the pmgr
   command surface, and inline ≡ sharded equivalence under NAT'd
   bidirectional traffic with binding churn and quarantine. *)

open Rp_pkt
open Rp_core
open Rp_session

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fresh_table =
  let n = ref 0 in
  fun () ->
    incr n;
    Session.Table.create (Printf.sprintf "test-%d" !n)

let s_ns n = Int64.mul (Int64.of_int n) 1_000_000_000L

let key ?(src = Ipaddr.v4 10 0 0 1) ?(dst = Ipaddr.v4 192 168 1 9)
    ?(proto = Proto.udp) ?(sport = 4000) ?(dport = 80) ?(iface = 0) () =
  Flow_key.make ~src ~dst ~proto ~sport ~dport ~iface

let snat_rule ?port ?tos addr =
  {
    Session.Table.kind = `Snat;
    filter = Rp_classifier.Filter.v4 ();
    addr;
    port;
    tos;
  }

let dnat_rule ?port ?tos addr =
  {
    Session.Table.kind = `Dnat;
    filter = Rp_classifier.Filter.v4 ();
    addr;
    port;
    tos;
  }

let flags ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false) () =
  Tcp_header.byte_of_flags
    { Tcp_header.fin; syn; rst; psh = false; ack; urg = false }

(* --- table: NAT mapping, direction resolution ----------------------- *)

let test_nat_mapping_and_reply () =
  let t = fresh_table () in
  Session.Table.add_rule t (snat_rule ~tos:0x28 (Ipaddr.v4 198 51 100 7));
  Session.Table.add_rule t (dnat_rule ~port:8080 (Ipaddr.v4 172 16 5 5));
  let k = key ~proto:Proto.tcp () in
  let s, dir =
    Option.get
      (Session.Table.resolve t k ~now:0L ~tcp_flags:(flags ~syn:true ()))
  in
  check bool_t "creator is the forward direction" true (dir = Flow_key.Fwd);
  check bool_t "session is NAT'd" true s.Session.nat;
  check string_t "snat source" "198.51.100.7"
    (Ipaddr.to_string s.Session.xlat_src);
  check string_t "dnat destination" "172.16.5.5"
    (Ipaddr.to_string s.Session.xlat_dst);
  check int_t "dnat port" 8080 s.Session.xlat_dport;
  check bool_t "qos from the rule" true (s.Session.qos = Some 0x28);
  (* the reply's ingress tuple — the reverse of the translated tuple —
     resolves to the same session, reverse direction *)
  let reply =
    Flow_key.make ~src:(Ipaddr.v4 172 16 5 5) ~dst:(Ipaddr.v4 198 51 100 7)
      ~proto:Proto.tcp ~sport:8080 ~dport:4000 ~iface:1
  in
  let s2, dir2 =
    Option.get (Session.Table.resolve t reply ~now:0L ~tcp_flags:0)
  in
  check bool_t "reply hits the same session" true (s2 == s);
  check bool_t "reply is the reverse direction" true (dir2 = Flow_key.Rev);
  (* post-rewrite tuples (what gates after the NAT plugin see) resolve
     with the true direction preserved *)
  let post_fwd =
    Flow_key.make ~src:(Ipaddr.v4 198 51 100 7) ~dst:(Ipaddr.v4 172 16 5 5)
      ~proto:Proto.tcp ~sport:4000 ~dport:8080 ~iface:0
  in
  let s3, dir3 =
    Option.get (Session.Table.resolve t post_fwd ~now:0L ~tcp_flags:0)
  in
  check bool_t "post-rewrite forward: same session" true (s3 == s);
  check bool_t "post-rewrite forward: direction kept" true
    (dir3 = Flow_key.Fwd);
  let post_rev =
    Flow_key.make ~src:(Ipaddr.v4 192 168 1 9) ~dst:(Ipaddr.v4 10 0 0 1)
      ~proto:Proto.tcp ~sport:80 ~dport:4000 ~iface:1
  in
  ignore post_rev;
  check int_t "exactly one session" 1 (Session.Table.length t);
  check int_t "no key conflicts" 0 (Session.Table.stats t).Session.Table.key_conflicts

let test_un_natted_session_single_key () =
  let t = fresh_table () in
  let s, _ = Option.get (Session.Table.resolve t (key ()) ~now:0L ~tcp_flags:0) in
  check bool_t "not NAT'd" false s.Session.nat;
  check bool_t "one index key" true
    (Flow_key.equal s.Session.fwd_lookup s.Session.rev_lookup);
  let s2, dir2 =
    Option.get
      (Session.Table.resolve t (Flow_key.reverse ~iface:1 (key ())) ~now:0L
         ~tcp_flags:0)
  in
  check bool_t "reverse resolves to it" true (s2 == s);
  check bool_t "as the reverse direction" true (dir2 = Flow_key.Rev);
  check int_t "one session" 1 (Session.Table.length t)

(* --- in-place rewrite with checksum fixup --------------------------- *)

let test_rewrite_raw_checksums () =
  let t = fresh_table () in
  Session.Table.add_rule t (snat_rule (Ipaddr.v4 198 51 100 7));
  let src = Ipaddr.v4 10 0 0 1 and dst = Ipaddr.v4 192 168 1 9 in
  let m =
    Mbuf.udp_v4 ~src ~dst ~sport:4000 ~dport:80 ~iface:0
      ~payload:"session rewrite" ()
  in
  let s, dir =
    Option.get (Session.Table.resolve t m.Mbuf.key ~now:0L ~tcp_flags:0)
  in
  check bool_t "rewrite applied" true (Session.apply_rewrite s dir m);
  check string_t "parsed key translated" "198.51.100.7"
    (Ipaddr.to_string m.Mbuf.key.Flow_key.src);
  let raw = Option.get m.Mbuf.raw in
  (* the IP header checksum was incrementally adjusted: parse (which
     verifies it) must succeed and see the new address *)
  (match Ipv4_header.parse raw 0 with
  | Ok h ->
    check string_t "wire source rewritten" "198.51.100.7"
      (Ipaddr.to_string h.Ipv4_header.src)
  | Error _ -> Alcotest.fail "IPv4 checksum invalid after rewrite");
  (* the UDP checksum (whose pseudo-header covers the addresses) still
     verifies — modulo the one's-complement zero class *)
  let udp_len = m.Mbuf.len - Ipv4_header.size in
  let embedded = Bytes.get_uint16_be raw (Ipv4_header.size + 6) in
  let expect =
    Udp_header.compute_checksum ~src:(Ipaddr.v4 198 51 100 7) ~dst raw
      Ipv4_header.size udp_len
  in
  check int_t "UDP checksum verifies" (expect mod 0xFFFF) (embedded mod 0xFFFF);
  (* a second application is a no-op *)
  check bool_t "idempotent" false (Session.apply_rewrite s dir m);
  (* and the reverse rewrite on the reply restores the original tuple *)
  let reply =
    Mbuf.udp_v4 ~src:dst ~dst:(Ipaddr.v4 198 51 100 7) ~sport:80 ~dport:4000
      ~iface:1 ~payload:"reply" ()
  in
  let s2, dir2 =
    Option.get (Session.Table.resolve t reply.Mbuf.key ~now:0L ~tcp_flags:0)
  in
  check bool_t "reply direction" true (s2 == s && dir2 = Flow_key.Rev);
  check bool_t "reply rewritten" true (Session.apply_rewrite s2 dir2 reply);
  check string_t "reply goes to the original source" "10.0.0.1"
    (Ipaddr.to_string reply.Mbuf.key.Flow_key.dst);
  match Ipv4_header.parse (Option.get reply.Mbuf.raw) 0 with
  | Ok h ->
    check string_t "reply wire destination" "10.0.0.1"
      (Ipaddr.to_string h.Ipv4_header.dst)
  | Error _ -> Alcotest.fail "reply IPv4 checksum invalid after rewrite"

(* --- conntrack state machine ---------------------------------------- *)

let test_conntrack_lifecycle () =
  let t = fresh_table () in
  let k = key ~proto:Proto.tcp () in
  let s, _ =
    Option.get
      (Session.Table.resolve t k ~now:0L ~tcp_flags:(flags ~syn:true ()))
  in
  let step dir fl = Session.conntrack_step s ~dir ~tcp_flags:fl in
  check string_t "created in syn-sent" "tcp-syn" (Session.state_name s);
  check bool_t "syn retransmit passes" true
    (step Flow_key.Fwd (flags ~syn:true ()) = `Pass);
  check string_t "still syn-sent" "tcp-syn" (Session.state_name s);
  check bool_t "syn-ack passes" true
    (step Flow_key.Rev (flags ~syn:true ~ack:true ()) = `Pass);
  check string_t "established" "tcp-est" (Session.state_name s);
  check bool_t "data passes" true (step Flow_key.Fwd (flags ~ack:true ()) = `Pass);
  check bool_t "fin passes" true
    (step Flow_key.Fwd (flags ~fin:true ~ack:true ()) = `Pass);
  check string_t "fin-wait" "tcp-fin" (Session.state_name s);
  check bool_t "ack in fin-wait passes" true
    (step Flow_key.Rev (flags ~ack:true ()) = `Pass);
  check string_t "one fin keeps fin-wait" "tcp-fin" (Session.state_name s);
  check bool_t "closing fin passes" true
    (step Flow_key.Rev (flags ~fin:true ~ack:true ()) = `Pass);
  check string_t "both fins close" "tcp-closed" (Session.state_name s);
  (match step Flow_key.Fwd (flags ~ack:true ()) with
  | `Drop _ -> ()
  | `Pass -> Alcotest.fail "data passed on a closed session");
  check bool_t "rst on closed passes" true
    (step Flow_key.Fwd (flags ~rst:true ()) = `Pass);
  check bool_t "syn reopens" true
    (step Flow_key.Fwd (flags ~syn:true ()) = `Pass);
  check string_t "reopened in syn-sent" "tcp-syn" (Session.state_name s);
  check bool_t "rst closes from any state" true
    (step Flow_key.Rev (flags ~rst:true ()) = `Pass);
  check string_t "rst closed" "tcp-closed" (Session.state_name s);
  check int_t "exactly one drop counted" 1 (Atomic.get s.Session.drops)

let test_midstream_pickup () =
  let t = fresh_table () in
  let s, _ =
    Option.get
      (Session.Table.resolve t
         (key ~proto:Proto.tcp ())
         ~now:0L
         ~tcp_flags:(flags ~ack:true ()))
  in
  (* a first packet that is not a pure SYN picks the session up as
     already established (router restart mid-conversation) *)
  check string_t "picked up established" "tcp-est" (Session.state_name s)

(* --- timeouts and export -------------------------------------------- *)

let test_udp_timeout_expiry () =
  let t = fresh_table () in
  Session.Table.add_rule t (snat_rule (Ipaddr.v4 198 51 100 7));
  let s, dir =
    Option.get (Session.Table.resolve t (key ()) ~now:(s_ns 1) ~tcp_flags:0)
  in
  Session.touch s ~now:(s_ns 5) ~dir ~len:100;
  check int_t "inside the udp timeout: kept" 0
    (Session.Table.expire t ~now:(s_ns 60));
  check int_t "still live" 1 (Session.Table.length t);
  Rp_obs.Flowlog.clear ();
  check int_t "past the udp timeout: expired" 1
    (Session.Table.expire t ~now:(s_ns 66));
  check int_t "gone" 0 (Session.Table.length t);
  (match Rp_obs.Flowlog.drain () with
  | [ r ] ->
    check string_t "export reason" "session-expired" r.Rp_obs.Flowlog.reason;
    check int_t "accounted packets" 1 r.Rp_obs.Flowlog.packets;
    (match r.Rp_obs.Flowlog.translated with
    | Some x ->
      check string_t "translated tuple exported" "198.51.100.7"
        x.Rp_obs.Flowlog.xsrc
    | None -> Alcotest.fail "expected a translated tuple on the export")
  | rs -> Alcotest.failf "expected one export record, got %d" (List.length rs));
  (* the timeout knob applies *)
  let s2, dir2 =
    Option.get (Session.Table.resolve t (key ()) ~now:(s_ns 100) ~tcp_flags:0)
  in
  Session.touch s2 ~now:(s_ns 100) ~dir:dir2 ~len:64;
  Session.Table.set_timeout t `Udp (s_ns 5);
  check int_t "shortened timeout expires sooner" 1
    (Session.Table.expire t ~now:(s_ns 106))

let prop_conntrack_never_leaks =
  qtest "conntrack: sessions never outlive their timeouts"
    QCheck2.Gen.(list_size (int_range 1 40) (pair bool (int_bound 4)))
    (fun ops ->
      let t = fresh_table () in
      let k = key ~proto:Proto.tcp () in
      let now = ref 0L in
      List.iter
        (fun (fwd, fsel) ->
          now := Int64.add !now 1_000_000L;
          let tcp_flags =
            match fsel with
            | 0 -> flags ~syn:true ()
            | 1 -> flags ~syn:true ~ack:true ()
            | 2 -> flags ~ack:true ()
            | 3 -> flags ~fin:true ~ack:true ()
            | _ -> flags ~rst:true ()
          in
          match Session.Table.resolve t k ~now:!now ~tcp_flags with
          | None -> ()
          | Some (s, _) ->
            let dir = if fwd then Flow_key.Fwd else Flow_key.Rev in
            Session.touch s ~now:!now ~dir ~len:64;
            ignore (Session.conntrack_step s ~dir ~tcp_flags))
        ops;
      (* closing states age out on the short tcp-fin timeout (10 s) *)
      let tight =
        match Session.Table.resolve t ~create:false k ~now:!now ~tcp_flags:0 with
        | Some (s, _) -> (
          match Session.state s with
          | Session.Tcp (Session.Tcp_fin | Session.Tcp_closed) ->
            ignore (Session.Table.expire t ~now:(Int64.add !now (s_ns 11)));
            Session.Table.length t = 0
          | _ -> true)
        | None -> true
      in
      (* and whatever the state, nothing survives the longest timeout
         (tcp-est, 300 s) *)
      ignore (Session.Table.expire t ~now:(Int64.add !now (s_ns 301)));
      tight && Session.Table.length t = 0)

(* --- router / engine helpers ----------------------------------------- *)

let mk_router () =
  let ifaces = [ Iface.create ~id:0 (); Iface.create ~id:1 () ] in
  let r = Router.create ~gates:Gate.all ~ifaces () in
  Router.add_route r (Prefix.of_string "10.0.0.0/8") ~iface:0 ();
  Router.add_route r (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  Router.add_route r (Prefix.of_string "172.16.0.0/12") ~iface:1 ();
  r

(* Load nat / conntrack / nat-out, one instance each on [table], bound
   to all IPv4 traffic.  Returns the instance ids. *)
let setup_session_plugins r ~table =
  let inst plugin =
    let m = Option.get (Rp_control.Plugin_lib.find plugin) in
    ok (Pcu.modload r.Router.pcu m);
    let i =
      ok (Pcu.create_instance r.Router.pcu ~plugin [ ("table", table) ])
    in
    ok
      (Pcu.register_instance r.Router.pcu ~instance:i.Plugin.instance_id
         (Rp_classifier.Filter.v4 ()));
    i.Plugin.instance_id
  in
  (inst "nat", inst "conntrack", inst "nat-out")

let outcome_repr (res : Rp_engine.Shard.result) =
  let o =
    match res.Rp_engine.Shard.outcome with
    | Rp_engine.Shard.Forwarded i -> Printf.sprintf "fwd:%d" i
    | Rp_engine.Shard.Absorbed -> "absorbed"
    | Rp_engine.Shard.Dropped why -> "drop:" ^ why
  in
  Printf.sprintf "%d %s %s tos=%d" res.Rp_engine.Shard.m.Mbuf.seq o
    (Flow_key.to_string res.Rp_engine.Shard.m.Mbuf.key)
    res.Rp_engine.Shard.m.Mbuf.tos

(* --- end to end on the inline engine --------------------------------- *)

let test_end_to_end_inline () =
  let r = mk_router () in
  let table = "e2e-inline" in
  let t = Session.Table.get table in
  ignore (Session.Table.flush t);
  Session.Table.add_rule t (snat_rule ~tos:0x38 (Ipaddr.v4 198 51 100 7));
  let _ids = setup_session_plugins r ~table in
  let e = Rp_engine.Engine.create Rp_engine.Engine.Inline r in
  let last = ref None in
  let run m now =
    assert (Rp_engine.Engine.submit e ~now m);
    ignore (Rp_engine.Engine.flush e ~f:(fun res -> last := Some res))
  in
  for i = 1 to 5 do
    run (Mbuf.synth ~key:(key ()) ~len:100 ()) (s_ns i)
  done;
  (match !last with
  | Some res ->
    (match res.Rp_engine.Shard.outcome with
    | Rp_engine.Shard.Forwarded 1 -> ()
    | _ -> Alcotest.fail "forward packet not forwarded to if1");
    check string_t "source translated on the wire key" "198.51.100.7"
      (Ipaddr.to_string res.Rp_engine.Shard.m.Mbuf.key.Flow_key.src);
    check int_t "qos class stamped" 0x38 res.Rp_engine.Shard.m.Mbuf.tos
  | None -> Alcotest.fail "no forward result");
  (* replies enter at if1 addressed to the NAT address *)
  let reply_key =
    Flow_key.make ~src:(Ipaddr.v4 192 168 1 9) ~dst:(Ipaddr.v4 198 51 100 7)
      ~proto:Proto.udp ~sport:80 ~dport:4000 ~iface:1
  in
  for i = 6 to 8 do
    run (Mbuf.synth ~key:reply_key ~len:100 ()) (s_ns i)
  done;
  (match !last with
  | Some res ->
    (match res.Rp_engine.Shard.outcome with
    | Rp_engine.Shard.Forwarded 0 -> ()
    | _ -> Alcotest.fail "reply not forwarded to if0");
    check string_t "reply destination restored" "10.0.0.1"
      (Ipaddr.to_string res.Rp_engine.Shard.m.Mbuf.key.Flow_key.dst)
  | None -> Alcotest.fail "no reply result");
  let st = Session.Table.stats t in
  check int_t "one session for both directions" 1 st.Session.Table.live;
  check int_t "per-direction accounting: forward"
    5
    (let s, _ =
       Option.get
         (Session.Table.resolve t ~create:false (key ()) ~now:0L ~tcp_flags:0)
     in
     Atomic.get s.Session.fwd_pkts);
  check int_t "per-direction accounting: reverse" 3
    (let s, _ =
       Option.get
         (Session.Table.resolve t ~create:false (key ()) ~now:0L ~tcp_flags:0)
     in
     Atomic.get s.Session.rev_pkts);
  (* steady state: no further table lookups, only cached soft-pointer
     hits — one more packet adds 3 cached hits (nat, conntrack,
     nat-out) and zero lookups *)
  let before = Session.Table.stats t in
  run (Mbuf.synth ~key:(key ()) ~len:100 ()) (s_ns 9);
  let after = Session.Table.stats t in
  check int_t "steady state does no table lookups"
    before.Session.Table.lookups after.Session.Table.lookups;
  check int_t "steady state rides the cached pointer"
    (before.Session.Table.cached_hits + 3)
    after.Session.Table.cached_hits;
  (* the cached next-hop is installed after the first routed packet of
     each direction *)
  (let s, _ =
     Option.get
       (Session.Table.resolve t ~create:false (key ()) ~now:0L ~tcp_flags:0)
   in
   check bool_t "forward route cached" true
     (Session.route s Flow_key.Fwd = Some (1, Some (Ipaddr.v4 192 168 1 9)));
   check bool_t "reverse route cached" true
     (Session.route s Flow_key.Rev = Some (0, Some (Ipaddr.v4 10 0 0 1))));
  (* flow-export records for NAT'd flows carry the translated tuple *)
  Rp_obs.Flowlog.clear ();
  Rp_engine.Engine.flush_flows e;
  let exported = Rp_obs.Flowlog.drain () in
  check bool_t "flow export carries the translated tuple" true
    (List.exists
       (fun (rec_ : Rp_obs.Flowlog.record) ->
         match rec_.Rp_obs.Flowlog.translated with
         | Some x -> x.Rp_obs.Flowlog.xsrc = "198.51.100.7"
         | None -> false)
       exported);
  Rp_engine.Engine.stop e;
  ignore (Session.Table.flush t)

(* --- steady-state cost: session path vs bare FIX --------------------- *)

let test_steady_state_accesses () =
  (* baseline: a bare router, no session plugins *)
  let measure_steady setup =
    let r = mk_router () in
    let table = setup r in
    let e = Rp_engine.Engine.create Rp_engine.Engine.Inline r in
    for i = 1 to 5 do
      assert (Rp_engine.Engine.submit e ~now:(s_ns i) (Mbuf.synth ~key:(key ()) ~len:100 ()));
      ignore (Rp_engine.Engine.flush e ~f:(fun _ -> ()))
    done;
    Rp_lpm.Access.set_enabled true;
    let (), accesses =
      Rp_lpm.Access.measure (fun () ->
          assert
            (Rp_engine.Engine.submit e ~now:(s_ns 9)
               (Mbuf.synth ~key:(key ()) ~len:100 ()));
          ignore (Rp_engine.Engine.flush e ~f:(fun _ -> ())))
    in
    Rp_engine.Engine.stop e;
    (match table with
    | Some t -> ignore (Session.Table.flush t)
    | None -> ());
    accesses
  in
  let baseline = measure_steady (fun _ -> None) in
  let session =
    measure_steady (fun r ->
        let t = Session.Table.get "steady" in
        ignore (Session.Table.flush t);
        Session.Table.add_rule t (snat_rule (Ipaddr.v4 198 51 100 7));
        ignore (setup_session_plugins r ~table:"steady");
        Some t)
  in
  (* NAT + conntrack + QoS + route ride on ONE additional charged
     memory access over the bare FIX fast path (the cached next-hop
     saves the LPM walk, so the net can even be lower) *)
  check bool_t
    (Printf.sprintf "session steady state (%d) <= FIX baseline (%d) + 1"
       session baseline)
    true
    (session <= baseline + 1)

(* --- canonical RSS --------------------------------------------------- *)

let test_canonical_rss () =
  let r = mk_router () in
  let e = Rp_engine.Engine.create (Rp_engine.Engine.Sharded 4) r in
  Rp_engine.Engine.set_rss e Session.shard_key;
  let k = key () in
  check int_t "both directions of a flow share a shard"
    (Rp_engine.Engine.shard_of_key e k)
    (Rp_engine.Engine.shard_of_key e (Flow_key.reverse ~iface:1 k));
  Rp_engine.Engine.stop e

(* --- pmgr command surface -------------------------------------------- *)

let test_pmgr_commands () =
  let r = mk_router () in
  let exec cmd = ok (Rp_control.Pmgr.exec r cmd) in
  ignore (Session.Table.flush (Session.Table.get "pm"));
  ignore
    (exec "nat add snat <10.0.0.0/8, *.*.*.*, *, *, *, *> 198.51.100.9 tos=40 table=pm");
  ignore
    (exec "nat add dnat <*.*.*.*, 192.168.0.0/16, UDP, *, *, *> 172.16.9.9 port=9999 table=pm");
  let shown = exec "nat show pm" in
  check bool_t "nat show lists both rules" true
    (String.length shown > 0
    && List.length (String.split_on_char '\n' shown) = 2);
  ignore (exec "sessions timeout udp 5 pm");
  check bool_t "timeout knob applied" true
    (Session.Table.timeout (Session.Table.get "pm") `Udp = s_ns 5);
  (* create a session through the table, then inspect *)
  let t = Session.Table.get "pm" in
  ignore (Session.Table.resolve t (key ()) ~now:(s_ns 1) ~tcp_flags:0);
  let show = exec "sessions show pm" in
  check bool_t "sessions show reports the live session" true
    (List.length (String.split_on_char '\n' show) = 2);
  check bool_t "sessions show includes the NAT mapping" true
    (String.length show > 0
    &&
    let has_sub needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    has_sub "198.51.100.9" show);
  let top = exec "sessions top 1 pm" in
  check bool_t "sessions top prints one line" true
    (List.length (String.split_on_char '\n' top) = 1);
  ignore (exec "sessions expire 100 pm");
  check int_t "expire swept the idle session" 0
    (Session.Table.length (Session.Table.get "pm"));
  ignore (exec "nat del 1 pm");
  ignore (exec "nat del 0 pm");
  check bool_t "nat del empties the rule list" true
    (Session.Table.rules (Session.Table.get "pm") = []);
  check bool_t "nat del on empty errors" true
    (Result.is_error (Rp_control.Pmgr.exec r "nat del 0 pm"))

(* --- inline = sharded equivalence under churn ------------------------ *)

type op =
  | Burst of bool * int * int * int  (* fwd?, flow, count, flag selector *)
  | Unbind_ct
  | Rebind_ct
  | Quarantine_nat
  | Restore_nat

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (frequency
         [
           ( 8,
             map
               (fun ((fwd, flow), (count, fsel)) ->
                 Burst (fwd, flow, count, fsel))
               (pair (pair bool (int_bound 2))
                  (pair (int_range 1 5) (int_bound 4))) );
           (1, return Unbind_ct);
           (1, return Rebind_ct);
           (1, return Quarantine_nat);
           (1, return Restore_nat);
         ]))

let scenario_flags fsel =
  match fsel with
  | 0 -> flags ~syn:true ()
  | 1 -> flags ~syn:true ~ack:true ()
  | 2 -> flags ~ack:true ()
  | 3 -> flags ~fin:true ~ack:true ()
  | _ -> flags ~rst:true ()

let scenario_pkt ~fwd ~flow ~fsel =
  let tcp_flags = scenario_flags fsel in
  if fwd then
    Mbuf.synth ~tcp_flags
      ~key:
        (Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 9)
           ~proto:Proto.tcp ~sport:(4000 + flow) ~dport:80 ~iface:0)
      ~len:100 ()
  else
    Mbuf.synth ~tcp_flags
      ~key:
        (Flow_key.make ~src:(Ipaddr.v4 192 168 1 9)
           ~dst:(Ipaddr.v4 198 51 100 7) ~proto:Proto.tcp ~sport:80
           ~dport:(4000 + flow) ~iface:1)
      ~len:100 ()

(* Run one op sequence against one engine mode.  Each burst is a
   single flow and direction, flushed before the next op, so packet
   order — and therefore conntrack evolution — is deterministic in
   both modes.  Control-plane mutations publish asynchronously to the
   worker domains, so wait for every shard to compile the current
   generation before offering more traffic. *)
let await_sync e =
  while not (Rp_engine.Engine.synced e) do
    Domain.cpu_relax ()
  done

let run_scenario mode table ops =
  let r = mk_router () in
  let t = Session.Table.get table in
  ignore (Session.Table.flush t);
  Session.Table.add_rule t (snat_rule ~tos:0x18 (Ipaddr.v4 198 51 100 7));
  let nat_id, ct_id, _ = setup_session_plugins r ~table in
  let e = Rp_engine.Engine.create mode r in
  let ct_filter = Rp_classifier.Filter.to_string (Rp_classifier.Filter.v4 ()) in
  let results = ref [] in
  let now = ref 0L and seq = ref 0 in
  let collect res = results := outcome_repr res :: !results in
  List.iter
    (fun op ->
      match op with
      | Unbind_ct ->
        ignore (Rp_control.Pmgr.exec r (Printf.sprintf "unbind %d %s" ct_id ct_filter));
        await_sync e
      | Rebind_ct ->
        ignore (Rp_control.Pmgr.exec r (Printf.sprintf "bind %d %s" ct_id ct_filter));
        await_sync e
      | Quarantine_nat ->
        ignore (Rp_control.Pmgr.exec r (Printf.sprintf "plugin quarantine %d" nat_id));
        await_sync e
      | Restore_nat ->
        ignore (Rp_control.Pmgr.exec r (Printf.sprintf "plugin restore %d" nat_id));
        await_sync e
      | Burst (fwd, flow, count, fsel) ->
        for _ = 1 to count do
          now := Int64.add !now 1_000_000L;
          incr seq;
          let m = scenario_pkt ~fwd ~flow ~fsel in
          m.Mbuf.seq <- !seq;
          ignore (Rp_engine.Engine.submit e ~now:!now m)
        done;
        ignore (Rp_engine.Engine.flush e ~f:collect))
    ops;
  ignore (Rp_engine.Engine.flush e ~f:collect);
  Rp_engine.Engine.stop e;
  ignore (Session.Table.flush t);
  List.rev !results

let prop_inline_equals_sharded =
  let n = ref 0 in
  qtest ~count:15
    "inline = sharded:4 verdict-for-verdict, rewrite-for-rewrite" gen_ops
    (fun ops ->
      incr n;
      let inline =
        run_scenario Rp_engine.Engine.Inline (Printf.sprintf "eq-inl-%d" !n) ops
      in
      let sharded =
        run_scenario (Rp_engine.Engine.Sharded 4)
          (Printf.sprintf "eq-shd-%d" !n)
          ops
      in
      inline = sharded)

let () =
  Alcotest.run "rp_session"
    [
      ( "table",
        [
          Alcotest.test_case "NAT mapping and reply resolution" `Quick
            test_nat_mapping_and_reply;
          Alcotest.test_case "un-NAT'd session has one key" `Quick
            test_un_natted_session_single_key;
          Alcotest.test_case "raw rewrite with checksum fixup" `Quick
            test_rewrite_raw_checksums;
        ] );
      ( "conntrack",
        [
          Alcotest.test_case "TCP lifecycle" `Quick test_conntrack_lifecycle;
          Alcotest.test_case "mid-stream pickup" `Quick test_midstream_pickup;
          prop_conntrack_never_leaks;
        ] );
      ( "expiry",
        [ Alcotest.test_case "UDP timeout and export" `Quick test_udp_timeout_expiry ] );
      ( "data-path",
        [
          Alcotest.test_case "end to end inline" `Quick test_end_to_end_inline;
          Alcotest.test_case "steady-state accesses" `Quick
            test_steady_state_accesses;
          Alcotest.test_case "canonical RSS" `Quick test_canonical_rss;
        ] );
      ( "pmgr",
        [ Alcotest.test_case "sessions and nat commands" `Quick test_pmgr_commands ] );
      ( "equivalence",
        [ prop_inline_equals_sharded ] );
    ]
