(* Tests for the discrete-event simulator: event ordering, the
   link/transmission model, traffic generators, sinks, and the canned
   scenarios. *)

open Rp_pkt
open Rp_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- engine ----------------------------------------------------------- *)

let test_event_ordering () =
  let sim = Rp_sim.Sim.create () in
  let log = ref [] in
  Rp_sim.Sim.at sim 30L (fun () -> log := 3 :: !log);
  Rp_sim.Sim.at sim 10L (fun () -> log := 1 :: !log);
  Rp_sim.Sim.at sim 20L (fun () -> log := 2 :: !log);
  (* Same-time events run in scheduling order. *)
  Rp_sim.Sim.at sim 10L (fun () -> log := 11 :: !log);
  ignore (Rp_sim.Sim.run sim);
  check bool_t "order" true (List.rev !log = [ 1; 11; 2; 3 ]);
  check bool_t "clock at last event" true (Rp_sim.Sim.now sim = 30L)

let test_until_and_past () =
  let sim = Rp_sim.Sim.create () in
  let fired = ref 0 in
  Rp_sim.Sim.at sim 100L (fun () -> incr fired);
  Rp_sim.Sim.at sim 200L (fun () -> incr fired);
  ignore (Rp_sim.Sim.run ~until:150L sim);
  check int_t "only first fired" 1 !fired;
  check bool_t "clock at until" true (Rp_sim.Sim.now sim = 150L);
  check int_t "one pending" 1 (Rp_sim.Sim.pending sim);
  (* Scheduling in the past is rejected. *)
  check bool_t "past rejected" true
    (try
       Rp_sim.Sim.at sim 10L (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_nested_scheduling () =
  let sim = Rp_sim.Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Rp_sim.Sim.after sim 5L (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 10;
  ignore (Rp_sim.Sim.run sim);
  check int_t "chain completed" 10 !count;
  check bool_t "time advanced" true (Rp_sim.Sim.now sim = 50L)

let prop_heap_order =
  qtest "sim: events always fire in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 10_000))
    (fun times ->
      let sim = Rp_sim.Sim.create () in
      let fired = ref [] in
      List.iter
        (fun t ->
          let t64 = Int64.of_int t in
          Rp_sim.Sim.at sim t64 (fun () -> fired := t64 :: !fired))
        times;
      ignore (Rp_sim.Sim.run sim);
      let seq = List.rev !fired in
      List.length seq = List.length times
      && List.for_all2 ( = ) seq (List.stable_sort Int64.compare seq))

(* --- link timing -------------------------------------------------------- *)

let test_serialization_delay () =
  (* One packet through one router: delivery time = processing (0 in
     sim time) + serialization + propagation. *)
  let s =
    Rp_sim.Scenario.single_router ~mode:Router.Best_effort ~in_ifaces:1
      ~out_bandwidth_bps:8_000_000L ()
  in
  let key = Rp_sim.Scenario.sink_key ~id:1 () in
  let m = Mbuf.synth ~key ~len:1000 () in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node m ~at:1000L;
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  (* 1000 B at 8 Mb/s = 1 ms serialization; prop 10 us. *)
  match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink key with
  | Some fs ->
    let expect = Int64.add 1000L (Int64.add 1_000_000L 10_000L) in
    check bool_t
      (Printf.sprintf "arrival at %Ld" fs.Rp_sim.Sink.first_ns)
      true
      (fs.Rp_sim.Sink.first_ns = expect)
  | None -> Alcotest.fail "packet not delivered"

let test_link_busy_serializes () =
  (* Two back-to-back packets: the second waits for the first's
     serialization. *)
  let s =
    Rp_sim.Scenario.single_router ~mode:Router.Best_effort ~in_ifaces:1
      ~out_bandwidth_bps:8_000_000L ()
  in
  let key = Rp_sim.Scenario.sink_key ~id:1 () in
  let m1 = Mbuf.synth ~key ~len:1000 () in
  let m2 = Mbuf.synth ~key ~len:1000 () in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node m1 ~at:0L;
  Rp_sim.Net.inject s.Rp_sim.Scenario.node m2 ~at:0L;
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  match Rp_sim.Sink.flow s.Rp_sim.Scenario.sink key with
  | Some fs ->
    check int_t "both arrived" 2 fs.Rp_sim.Sink.packets;
    (* Second arrival exactly one serialization later. *)
    check bool_t "spaced by serialization" true
      (Int64.sub fs.Rp_sim.Sink.last_ns fs.Rp_sim.Sink.first_ns = 1_000_000L)
  | None -> Alcotest.fail "packets not delivered"

(* --- traffic generators --------------------------------------------------- *)

let run_pattern pattern ~seconds =
  let s = Rp_sim.Scenario.single_router ~mode:Router.Best_effort ~in_ifaces:1 () in
  let key = Rp_sim.Scenario.sink_key ~id:1 () in
  let injected =
    Rp_sim.Scenario.add_flow s
      {
        Rp_sim.Traffic.key;
        pkt_len = 500;
        pattern;
        start_ns = 0L;
        stop_ns = Rp_sim.Sim.ns_of_sec seconds;
        seed = 7;
      }
  in
  Rp_sim.Scenario.run s ~seconds:(seconds +. 1.0);
  (!injected, Rp_sim.Sink.total_packets s.Rp_sim.Scenario.sink)

let test_cbr_count () =
  let injected, delivered = run_pattern (Rp_sim.Traffic.Cbr 1000.0) ~seconds:1.0 in
  check int_t "cbr 1000 pps for 1 s" 1000 injected;
  check int_t "all delivered" injected delivered

let test_poisson_count () =
  let injected, delivered = run_pattern (Rp_sim.Traffic.Poisson 1000.0) ~seconds:2.0 in
  (* Mean 2000; 5 sigma ≈ 224. *)
  check bool_t (Printf.sprintf "poisson count plausible (%d)" injected) true
    (injected > 1700 && injected < 2300);
  check int_t "all delivered" injected delivered

let test_poisson_deterministic () =
  let a, _ = run_pattern (Rp_sim.Traffic.Poisson 500.0) ~seconds:1.0 in
  let b, _ = run_pattern (Rp_sim.Traffic.Poisson 500.0) ~seconds:1.0 in
  check int_t "same seed, same run" a b

let test_on_off_duty_cycle () =
  let injected, _ =
    run_pattern
      (Rp_sim.Traffic.On_off
         { rate_pps = 1000.0; on_ns = 100_000_000L; off_ns = 100_000_000L })
      ~seconds:1.0
  in
  (* 50% duty cycle of 1000 pps over 1 s ≈ 500. *)
  check bool_t (Printf.sprintf "on-off count (%d)" injected) true
    (injected >= 450 && injected <= 550)

let test_single_burst () =
  let injected, delivered =
    run_pattern (Rp_sim.Traffic.Single_burst { count = 37; gap_ns = 1000L }) ~seconds:1.0
  in
  check int_t "burst count" 37 injected;
  check int_t "delivered" 37 delivered

(* --- node accounting ------------------------------------------------------- *)

let test_node_stats_and_drops () =
  let s = Rp_sim.Scenario.single_router ~in_ifaces:1 () in
  (* One routable packet, one unroutable. *)
  let good = Mbuf.synth ~key:(Rp_sim.Scenario.sink_key ~id:1 ()) ~len:100 () in
  let bad_key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 9) ~dst:(Ipaddr.v4 8 8 8 8)
      ~proto:Proto.udp ~sport:1 ~dport:2 ~iface:0
  in
  let bad = Mbuf.synth ~key:bad_key ~len:100 () in
  Rp_sim.Net.inject s.Rp_sim.Scenario.node good ~at:0L;
  Rp_sim.Net.inject s.Rp_sim.Scenario.node bad ~at:10L;
  ignore (Rp_sim.Sim.run s.Rp_sim.Scenario.sim);
  let st = Rp_sim.Net.stats s.Rp_sim.Scenario.node in
  check int_t "received" 2 st.Rp_sim.Net.received;
  check int_t "forwarded" 1 st.Rp_sim.Net.forwarded;
  check int_t "dropped" 1 st.Rp_sim.Net.dropped;
  check bool_t "drop reason recorded" true
    (List.mem_assoc "no route to destination" st.Rp_sim.Net.drop_reasons);
  check bool_t "cycles accounted" true (Rp_sim.Net.cycles_per_packet s.Rp_sim.Scenario.node > 0.0)

let test_two_router_chain () =
  (* r1 -> r2 -> sink; the FIX must not leak across routers. *)
  let sim = Rp_sim.Sim.create () in
  let mk () =
    [ Iface.create ~id:0 (); Iface.create ~id:1 () ]
  in
  let r1 = Router.create ~name:"r1" ~ifaces:(mk ()) () in
  let r2 = Router.create ~name:"r2" ~ifaces:(mk ()) () in
  Router.add_route r1 (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  Router.add_route r2 (Prefix.of_string "192.168.0.0/16") ~iface:1 ();
  let n1 = Rp_sim.Net.add_router sim r1 in
  let n2 = Rp_sim.Net.add_router sim r2 in
  let sink = Rp_sim.Sink.create () in
  Rp_sim.Net.connect n1 ~iface:1 (Rp_sim.Net.To_node (n2, 0)) ~prop_ns:1000L;
  Rp_sim.Net.connect n2 ~iface:1 (Rp_sim.Net.To_sink sink) ~prop_ns:1000L;
  let key = Rp_sim.Scenario.sink_key ~id:1 () in
  for i = 0 to 9 do
    let m = Mbuf.synth ~key ~len:500 () in
    m.Mbuf.seq <- i;
    Rp_sim.Net.inject n1 m ~at:(Int64.of_int (i * 1000))
  done;
  ignore (Rp_sim.Sim.run sim);
  check int_t "all through both hops" 10 (Rp_sim.Sink.total_packets sink);
  check int_t "r2 received all" 10 (Rp_sim.Net.stats n2).Rp_sim.Net.received;
  (* TTL decremented twice. *)
  match Rp_sim.Sink.flows sink with
  | [ (_, fs) ] -> check int_t "one flow at sink" 10 fs.Rp_sim.Sink.packets
  | l -> Alcotest.failf "expected one flow, got %d" (List.length l)

(* --- synth generator -------------------------------------------------- *)

(* The rate cap's token bucket must hold at most one max-batch: a
   consumer that stalls for a long time resumes with a budget of [max],
   not an unbounded catch-up burst, and the forfeited tokens are
   counted in [capped]. *)
let test_synth_bucket_clamp () =
  let pool = Pool.create ~capacity:1024 () in
  let link = Link.create ~capacity:1024 () in
  let synth = Rp_sim.Synth.create ~rate_pps:1_000_000.0 ~pool () in
  (* 1 Mpps: one packet per microsecond.  First pull starts the rate
     epoch; 16 us later the bucket holds 16 tokens. *)
  ignore (Rp_sim.Synth.pull synth ~now_ns:0L link ~max:32);
  check int_t "16 tokens after 16 us" 16
    (Rp_sim.Synth.pull synth ~now_ns:16_000L link ~max:32);
  check int_t "no clamp yet" 0 (Rp_sim.Synth.capped synth);
  (* The consumer stalls for a millisecond: ~1000 tokens accrue, but
     the resumed pull is clamped to one max-batch... *)
  check int_t "stalled consumer resumes with one batch" 32
    (Rp_sim.Synth.pull synth ~now_ns:1_016_000L link ~max:32);
  check int_t "clamp counted" 1 (Rp_sim.Synth.capped synth);
  (* ...and the excess tokens were forfeited, not banked: the next
     pull a single microsecond later gets 1 token, not ~968. *)
  check int_t "bucket was reset, not drained" 1
    (Rp_sim.Synth.pull synth ~now_ns:1_017_000L link ~max:32);
  check int_t "still one clamp" 1 (Rp_sim.Synth.capped synth)

(* An unlimited source is budgeted by [max] alone — never counted as
   clamped, whatever the clock does. *)
let test_synth_unlimited_never_capped () =
  let pool = Pool.create ~capacity:1024 () in
  let link = Link.create ~capacity:1024 () in
  let synth = Rp_sim.Synth.create ~pool () in
  check int_t "full batch" 32 (Rp_sim.Synth.pull synth ~now_ns:0L link ~max:32);
  check int_t "full batch after a huge gap" 32
    (Rp_sim.Synth.pull synth ~now_ns:1_000_000_000L link ~max:32);
  check int_t "never capped" 0 (Rp_sim.Synth.capped synth);
  check int_t "generated counts sent packets" 64
    (Rp_sim.Synth.generated synth)

let () =
  Alcotest.run "rp_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "until / past" `Quick test_until_and_past;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          prop_heap_order;
        ] );
      ( "link",
        [
          Alcotest.test_case "serialization delay" `Quick test_serialization_delay;
          Alcotest.test_case "busy link serializes" `Quick test_link_busy_serializes;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "cbr count" `Quick test_cbr_count;
          Alcotest.test_case "poisson count" `Quick test_poisson_count;
          Alcotest.test_case "poisson deterministic" `Quick test_poisson_deterministic;
          Alcotest.test_case "on-off duty cycle" `Quick test_on_off_duty_cycle;
          Alcotest.test_case "single burst" `Quick test_single_burst;
        ] );
      ( "net",
        [
          Alcotest.test_case "node stats and drops" `Quick test_node_stats_and_drops;
          Alcotest.test_case "two-router chain" `Quick test_two_router_chain;
        ] );
      ( "synth",
        [
          Alcotest.test_case "token bucket clamped to one batch" `Quick
            test_synth_bucket_clamp;
          Alcotest.test_case "unlimited source never capped" `Quick
            test_synth_unlimited_never_capped;
        ] );
    ]
