(* Tests for the latency-SLO layer and the unified drop-reason
   taxonomy: breach semantics and per-shard histograms, exemplar
   capture and resolution, the [of_why] classification table, qcheck
   drop-conservation over random fault / no-route / overflow /
   fragmentation workloads on both engines, the link/pool drop sites,
   health probes, and the Prometheus exposition round-trip. *)

open Rp_pkt
open Rp_core
open Rp_engine
module Slo = Rp_obs.Slo
module Dr = Rp_obs.Drop_reason
module Health = Rp_obs.Health
module Prom = Rp_obs.Prom

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let float_t = Alcotest.float 1e-9

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let counter name = Rp_obs.Counter.get (Rp_obs.Registry.counter name)

(* --- drop-reason taxonomy -------------------------------------------- *)

(* The verdict strings are the contract between the drop sites and the
   classifier; pin each one, both prefix families, and the Policy
   fallback for anything a plugin invents. *)
let test_of_why_table () =
  List.iter
    (fun (why, expect) ->
      check string_t why (Dr.name expect) (Dr.name (Dr.of_why why)))
    [
      ("ttl expired", Dr.Ttl_expired);
      ("no route to destination", Dr.No_route);
      ("plugin fault", Dr.Fault);
      ("output queue", Dr.Queue_overflow);
      ("needs fragmentation", Dr.Needs_frag);
      ("partial fragment loss (2/4 fragments queued)", Dr.Frag_loss);
      ("conntrack: out of state", Dr.Conntrack);
      ("conntrack table full", Dr.Conntrack);
      ("firewall deny", Dr.Policy);
      ("", Dr.Policy);
    ]

let sum_reasons reasons = List.fold_left (fun a r -> a + Dr.get r) 0 reasons

let test_count_conservation_by_construction () =
  let t0 = Dr.total () and s0 = sum_reasons Dr.all in
  Dr.count Dr.Ttl_expired;
  Dr.count_why "firewall deny";
  Dr.add Dr.Backpressure 5;
  Dr.add Dr.Fault 0;
  (* add 0 is a no-op *)
  check int_t "total delta" 7 (Dr.total () - t0);
  check int_t "per-reason sum tracks total" (Dr.total () - t0)
    (sum_reasons Dr.all - s0);
  check bool_t "summary names the reasons" true
    (String.length (Dr.to_string ()) > 0);
  check int_t "table covers the whole taxonomy" (List.length Dr.all)
    (List.length (Dr.table ()))

(* --- SLO breach semantics and shard histograms ----------------------- *)

let test_slo_breach_semantics () =
  Slo.set_stamping true;
  Slo.set_threshold 0;
  check bool_t "stamping on" true (Slo.on ());
  check bool_t "no threshold: not armed" false (Slo.armed ());
  (* Unarmed, only the overflow latency bucket counts as a breach. *)
  let top = Slo.latency_bounds.(Array.length Slo.latency_bounds - 1) in
  check bool_t "at the top bound: no breach" false (Slo.is_breach top);
  check bool_t "over the top bound: breach" true (Slo.is_breach (top + 1));
  Slo.set_threshold 500;
  check int_t "threshold readable" 500 (Slo.get_threshold ());
  check bool_t "threshold set: armed" true (Slo.armed ());
  check bool_t "meeting the threshold breaches" true (Slo.is_breach 500);
  check bool_t "under the threshold: no breach" false (Slo.is_breach 499);
  Slo.set_stamping false;
  check bool_t "stamping off disarms capture" false (Slo.armed ());
  Slo.set_stamping true;
  Slo.set_threshold 0

let test_slo_observe_shard_table () =
  (* A shard id no engine in this binary uses: fresh histograms. *)
  let shard = 63 in
  Slo.observe ~shard Slo.Absorb 100;
  Slo.observe ~shard Slo.Absorb 300;
  Slo.observe ~shard Slo.Drop 700;
  match
    List.find_opt
      (fun (s, c, _) -> s = shard && c = Slo.Absorb)
      (Slo.shard_table ())
  with
  | None -> Alcotest.fail "shard histogram not in the table"
  | Some (_, _, h) ->
    check int_t "observations split by class" 2 (Rp_obs.Histogram.total h);
    (* Both absorb observations share the first latency bucket, so the
       interpolated median stays inside that bucket's value range. *)
    let q = Rp_obs.Histogram.quantile h 0.5 in
    check bool_t "median within the containing bucket" true
      (q > 0.0 && q <= float_of_int Slo.latency_bounds.(0));
    check string_t "class names" "absorb" (Slo.cls_name Slo.Absorb)

(* --- routers and workloads ------------------------------------------- *)

let prefix = Prefix.of_string "192.168.0.0/16"

(* Three empty gates (so exemplar gate attribution has entries) plus a
   fault injector on TCP at Security_in; if1 can take a tiny FIFO and
   MTU so sustained traffic exercises the queue-overflow and
   fragment-loss drop sites. *)
let mk_router ?(fifo_limit = max_int) ?(mtu = 1500) () =
  let gates = [ Gate.Ip_options; Gate.Security_in; Gate.Stats ] in
  let ifaces =
    [ Iface.create ~id:0 (); Iface.create ~id:1 ~mtu ~fifo_limit () ]
  in
  let r = Router.create ~mode:Router.Plugins ~gates ~ifaces () in
  Router.add_route r prefix ~iface:1 ();
  List.iter
    (fun (g, n) ->
      ok (Pcu.modload r.Router.pcu (Empty_plugin.make ~gate:g ~name:n));
      let i = ok (Pcu.create_instance r.Router.pcu ~plugin:n []) in
      ok
        (Pcu.register_instance r.Router.pcu ~instance:i.Plugin.instance_id
           (Rp_classifier.Filter.v4 ~proto:Proto.udp ())))
    [ (Gate.Ip_options, "slo0"); (Gate.Security_in, "slo1");
      (Gate.Stats, "slo2") ];
  ok (Pcu.modload r.Router.pcu
        (Fault_plugin.make ~gate:Gate.Security_in ~name:"slo-fault"));
  let fi =
    ok
      (Pcu.create_instance r.Router.pcu ~plugin:"slo-fault"
         [ ("mode", "raise"); ("every", "1") ])
  in
  ok
    (Pcu.register_instance r.Router.pcu ~instance:fi.Plugin.instance_id
       (Rp_classifier.Filter.v4 ~proto:Proto.tcp ()));
  r

type kind = Good | Ttl_one | Unrouted | Faulting | Big | Df

let kind_gen =
  QCheck2.Gen.map
    (function
      | 0 -> Good
      | 1 -> Ttl_one
      | 2 -> Unrouted
      | 3 -> Faulting
      | 4 -> Big
      | _ -> Df)
    (QCheck2.Gen.int_range 0 5)

let mk_pkt kind f =
  let dst =
    match kind with
    | Unrouted -> Ipaddr.v4 8 8 8 8
    | _ -> Ipaddr.v4 192 168 1 1
  in
  let proto = match kind with Faulting -> Proto.tcp | _ -> Proto.udp in
  let key =
    Flow_key.make
      ~src:(Ipaddr.v4 10 0 0 (1 + (f land 0x7F)))
      ~dst ~proto ~sport:(1000 + f) ~dport:9000 ~iface:0
  in
  let ttl = match kind with Ttl_one -> 1 | _ -> 64 in
  let len = match kind with Big | Df -> 1000 | _ -> 200 in
  let m = Mbuf.synth ~ttl ~key ~len () in
  (match kind with Df -> m.Mbuf.dont_fragment <- true | _ -> ());
  m

(* --- exemplar capture ------------------------------------------------ *)

let test_exemplars_resolve () =
  Slo.set_stamping true;
  Slo.clear_exemplars ();
  let r = mk_router () in
  let warm () = ignore (Ip_core.process r ~now:0L (mk_pkt Good 1)) in
  warm ();
  (* Arm a 1-cycle threshold: every packet breaches and captures. *)
  Slo.set_threshold 1;
  for i = 2 to 9 do
    ignore (Ip_core.process r ~now:0L (mk_pkt Good i))
  done;
  Slo.set_threshold 0;
  let exs = Slo.exemplars () in
  check bool_t "exemplars captured" true (List.length exs >= 1);
  List.iter
    (fun (e : Slo.exemplar) ->
      check bool_t "flow key resolved" true (e.key <> "");
      check bool_t "per-gate attribution resolved" true (e.gates <> []);
      check bool_t "cycles recorded" true (e.cycles >= 1);
      check int_t "threshold at capture time" 1 e.slo;
      check bool_t "renders" true
        (String.length (Slo.exemplar_to_string e) > 0))
    exs;
  check int_t "limit honored" 1 (List.length (Slo.exemplars ~limit:1 ()));
  Slo.clear_exemplars ();
  check int_t "cleared" 0 (List.length (Slo.exemplars ()))

(* --- drop conservation (qcheck, both engines) ------------------------ *)

(* Registry counters persist across the whole test binary, so every
   invariant is checked on deltas around the workload.  Locally
   observed drop verdicts are a floor, not an equality: TTL and
   needs-frag drops emit ICMP errors that re-enter the data path and
   can drop again (no route back), each counted once under its own
   reason. *)
let drop_conservation_inline =
  qtest "drop conservation under random workloads (inline)"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 120) kind_gen)
    (fun kinds ->
      let r = mk_router ~fifo_limit:4 ~mtu:296 () in
      let v0 = sum_reasons Dr.verdict_reasons
      and a0 = sum_reasons Dr.all
      and t0 = Dr.total ()
      and core0 = counter "ip_core.dropped" in
      let dropped = ref 0 in
      List.iteri
        (fun i k ->
          match Ip_core.process r ~now:0L (mk_pkt k i) with
          | Ip_core.Dropped _ -> incr dropped
          | _ -> ())
        kinds;
      let verdicts = sum_reasons Dr.verdict_reasons - v0 in
      verdicts = counter "ip_core.dropped" - core0
      && verdicts >= !dropped
      && Dr.total () - t0 = sum_reasons Dr.all - a0)

let drop_conservation_sharded =
  qtest ~count:8 "drop conservation under random workloads (sharded:2)"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 150) kind_gen)
    (fun kinds ->
      let r = mk_router ~fifo_limit:4 ~mtu:296 () in
      let e = Engine.create ~rx_capacity:16 (Engine.Sharded 2) r in
      let v0 = sum_reasons Dr.verdict_reasons
      and a0 = sum_reasons Dr.all
      and t0 = Dr.total ()
      and bp0 = Dr.get Dr.Backpressure
      and ebp0 = counter "engine.backpressure_drops"
      and core0 = counter "ip_core.dropped"
      and s0 = counter "engine.shard0.dropped"
      and s1 = counter "engine.shard1.dropped" in
      let rejected = ref 0 and dropped = ref 0 in
      let record (res : Shard.result) =
        match res.Shard.outcome with
        | Shard.Dropped _ -> incr dropped
        | Shard.Forwarded _ | Shard.Absorbed -> ()
      in
      List.iteri
        (fun i k ->
          if not (Engine.submit e ~now:0L (mk_pkt k i)) then incr rejected;
          ignore (Engine.drain e ~f:record))
        kinds;
      ignore (Engine.flush e ~f:record);
      Engine.stop e;
      let verdicts = sum_reasons Dr.verdict_reasons - v0 in
      let engine_drops =
        counter "ip_core.dropped" - core0
        + (counter "engine.shard0.dropped" - s0)
        + (counter "engine.shard1.dropped" - s1)
      in
      verdicts = engine_drops
      && engine_drops >= !dropped
      && Dr.get Dr.Backpressure - bp0 = !rejected
      && counter "engine.backpressure_drops" - ebp0 = !rejected
      && Dr.total () - t0 = sum_reasons Dr.all - a0)

(* --- link / pool drop sites ------------------------------------------ *)

let test_link_pool_reasons () =
  let key =
    Flow_key.make ~src:(Ipaddr.v4 10 0 0 1) ~dst:(Ipaddr.v4 192 168 1 1)
      ~proto:Proto.udp ~sport:1 ~dport:9 ~iface:0
  in
  let l0 = Dr.get Dr.Link_overflow and t0 = Dr.total () in
  let link = Link.create ~capacity:2 () in
  check bool_t "tx 1" true (Link.transmit link (Mbuf.synth ~key ~len:64 ()));
  check bool_t "tx 2" true (Link.transmit link (Mbuf.synth ~key ~len:64 ()));
  check bool_t "tx on a full link refused" false
    (Link.transmit link (Mbuf.synth ~key ~len:64 ()));
  check int_t "link overflow counted once" 1 (Dr.get Dr.Link_overflow - l0);
  let p0 = Dr.get Dr.Pool_exhausted in
  let pool = Pool.create ~buf_size:0 ~capacity:1 () in
  ignore (Pool.alloc pool ~key ~len:64);
  (match Pool.alloc pool ~key ~len:64 with
   | exception Pool.Empty -> ()
   | _ -> Alcotest.fail "expected the pool to be exhausted");
  check int_t "pool exhaustion counted once" 1 (Dr.get Dr.Pool_exhausted - p0);
  check int_t "family total follows" 2 (Dr.total () - t0)

(* --- health probes --------------------------------------------------- *)

let test_health_probes () =
  let v = ref 1.0 in
  Health.register "t.probe" (fun () -> !v);
  let find name =
    List.find_opt (fun (n, _, _) -> n = name) (Health.snapshot ())
  in
  let expect name last hwm =
    match find name with
    | Some (_, l, h) ->
      check float_t (name ^ " last") last l;
      check float_t (name ^ " hwm") hwm h
    | None -> Alcotest.failf "probe %s not in snapshot" name
  in
  let n0 = Health.samples () in
  Health.sample ();
  expect "t.probe" 1.0 1.0;
  v := 5.0;
  Health.sample ();
  expect "t.probe" 5.0 5.0;
  (* The watermark keeps the spike after the value falls back. *)
  v := 2.0;
  Health.sample ();
  expect "t.probe" 2.0 5.0;
  Health.reset_hwm ();
  expect "t.probe" 2.0 2.0;
  (* A probe that raises samples as 0 instead of breaking the loop. *)
  Health.register "t.raise" (fun () -> failwith "boom");
  Health.sample ();
  expect "t.raise" 0.0 0.0;
  check int_t "samples counted" 4 (Health.samples () - n0);
  check bool_t "renders" true (String.length (Health.to_string ()) > 0);
  Health.unregister "t.probe";
  Health.unregister "t.raise";
  check bool_t "unregistered" true (find "t.probe" = None)

(* --- Prometheus exposition ------------------------------------------- *)

let test_prom_roundtrip () =
  (* The live registry (counters, gauges, histograms from every suite
     that ran before this one) must pass its own linter. *)
  (match Prom.lint (Prom.text ()) with
   | Ok n -> check bool_t "samples rendered" true (n > 0)
   | Error e -> Alcotest.failf "exposition fails its own lint: %s" e);
  check string_t "name sanitization" "rp_slo_latency_cycles"
    (Prom.sanitize "slo.latency.cycles");
  let rejects label text =
    match Prom.lint text with
    | Ok _ -> Alcotest.failf "%s: lint accepted invalid exposition" label
    | Error _ -> ()
  in
  rejects "sample without TYPE" "rp_x 1\n";
  rejects "bad value" "# TYPE rp_x counter\nrp_x banana\n";
  rejects "non-monotonic buckets"
    "# TYPE rp_h histogram\nrp_h_bucket{le=\"1\"} 5\nrp_h_bucket{le=\"2\"} 3\n\
     rp_h_bucket{le=\"+Inf\"} 5\nrp_h_sum 5\nrp_h_count 5\n";
  rejects "missing +Inf"
    "# TYPE rp_h histogram\nrp_h_bucket{le=\"1\"} 5\nrp_h_sum 5\nrp_h_count 5\n";
  rejects "_count disagrees with +Inf"
    "# TYPE rp_h histogram\nrp_h_bucket{le=\"1\"} 5\n\
     rp_h_bucket{le=\"+Inf\"} 5\nrp_h_sum 5\nrp_h_count 4\n"

(* ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "slo"
    [
      ( "drop-reason",
        [
          Alcotest.test_case "of_why classification table" `Quick
            test_of_why_table;
          Alcotest.test_case "conservation by construction" `Quick
            test_count_conservation_by_construction;
          Alcotest.test_case "link/pool drop sites" `Quick
            test_link_pool_reasons;
        ] );
      ( "slo",
        [
          Alcotest.test_case "breach semantics" `Quick
            test_slo_breach_semantics;
          Alcotest.test_case "shard histograms by class" `Quick
            test_slo_observe_shard_table;
          Alcotest.test_case "exemplars resolve" `Quick test_exemplars_resolve;
        ] );
      ( "conservation",
        [ drop_conservation_inline; drop_conservation_sharded ] );
      ( "health",
        [ Alcotest.test_case "probe lifecycle" `Quick test_health_probes ] );
      ( "prom",
        [ Alcotest.test_case "round-trip + rejects" `Quick
            test_prom_roundtrip ] );
    ]
